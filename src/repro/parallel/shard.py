"""Slab decomposition of the cell grid for sharded execution.

The tunnel is cut into ``n_workers`` contiguous x-slabs of (nearly)
equal cell width.  Slab boundaries sit on integer cell columns, so
every grid cell -- and therefore every particle after boundary
enforcement -- belongs to exactly one shard, and the selection rule's
per-cell machinery runs unchanged inside each shard.

This mirrors the paper's processor decomposition: where the CM-2
assigns one virtual processor per particle and lets the sort migrate
particle state between physical processors, the shard decomposition
assigns one worker per slab and migrates the few boundary-crossing
particles explicitly each step (see :mod:`repro.parallel.exchange`).
X-slabs (rather than 2-D tiles) keep every shard's migration pattern a
two-neighbour exchange and match the wind tunnel's streamwise flow:
the mean drift crosses slab faces, the transverse motion never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Minimum slab width, cells.  A particle must never out-run its
#: neighbouring slab in one step (the exchange only wires adjacent
#: shards); molecular speeds in the validation regime are O(1) cell
#: per step, so two cells of slab width is already a 2x guard band.
MIN_SLAB_WIDTH = 2


@dataclass(frozen=True)
class ShardSlabs:
    """Contiguous x-slab decomposition of an ``nx``-column grid.

    Attributes
    ----------
    nx:
        Total grid columns being decomposed.
    edges:
        Integer cell-column boundaries, length ``n_workers + 1``:
        shard ``k`` owns columns (and x positions) in
        ``[edges[k], edges[k+1])``.
    """

    nx: int
    edges: Tuple[int, ...]

    @classmethod
    def split(cls, nx: int, n_workers: int) -> "ShardSlabs":
        """Evenly decompose ``nx`` columns into ``n_workers`` slabs."""
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if nx < n_workers * MIN_SLAB_WIDTH:
            raise ConfigurationError(
                f"{nx} columns cannot host {n_workers} shards of at least "
                f"{MIN_SLAB_WIDTH} cells each"
            )
        edges = tuple(
            int(round(k * nx / n_workers)) for k in range(n_workers + 1)
        )
        return cls(nx=nx, edges=edges)

    def __post_init__(self) -> None:
        if len(self.edges) < 2 or self.edges[0] != 0 or self.edges[-1] != self.nx:
            raise ConfigurationError("edges must span [0, nx]")
        widths = np.diff(self.edges)
        if (widths < MIN_SLAB_WIDTH).any():
            raise ConfigurationError(
                f"every slab needs >= {MIN_SLAB_WIDTH} cell columns, got "
                f"widths {widths.tolist()}"
            )

    @property
    def n_workers(self) -> int:
        return len(self.edges) - 1

    def bounds(self, shard_id: int) -> Tuple[float, float]:
        """``[x_lo, x_hi)`` extent of one slab, in cell widths."""
        return float(self.edges[shard_id]), float(self.edges[shard_id + 1])

    def shard_of(self, x: np.ndarray) -> np.ndarray:
        """Owning shard of each x position (clipped into the grid)."""
        # searchsorted('right') maps x in [edges[k], edges[k+1]) to k+1;
        # the clip folds upstream/downstream stragglers (x < 0 or
        # x >= nx, which only boundary enforcement may later remove)
        # into the first/last shard.
        idx = np.searchsorted(np.asarray(self.edges), x, side="right") - 1
        return np.clip(idx, 0, self.n_workers - 1)

    def partition_order(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Stable partition of positions into shard-contiguous order.

        Returns ``(order, splits)``: applying ``order`` groups the
        particles by shard (relative order within a shard preserved --
        this is what makes a gather/re-partition round-trip exact), and
        ``splits[k]`` is the first index of shard ``k``'s run in the
        ordered arrays (length ``n_workers + 1``).
        """
        shard = self.shard_of(x)
        order = np.argsort(shard, kind="stable")
        splits = np.searchsorted(shard, np.arange(self.n_workers + 1),
                                 sorter=order)
        return order, splits
