"""The append-only JSONL event stream of a run directory.

One file, one JSON object per line, every record carrying a ``kind``
and a wall-clock ``time`` -- the format the resilience ``RunJournal``
introduced, promoted here to the run's *single* event stream: metric
samples, spans, physics observables, audit results, checkpoint and
recovery events all land in the same file
(``events.jsonl`` by default), so one ``python -m
repro.telemetry.report`` pass reconstructs what a run did, whether it
was serial, sharded, or supervised through three crash recoveries.

:class:`repro.resilience.supervisor.RunJournal` is now a thin subclass
writing ``journal.jsonl`` -- same API, same format, kept as its own
file so existing run directories and tooling keep working.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import List, Union

PathLike = Union[str, pathlib.Path]


class EventStream:
    """Append-only JSONL writer/reader for one run directory.

    Every record is one JSON object per line with at least a ``kind``
    field and a wall-clock ``time``.  The in-memory ``events`` list
    mirrors what this process appended; :meth:`load` reads the whole
    file back (including records from previous processes).
    """

    #: File name inside the run directory; subclasses override.
    filename = "events.jsonl"

    def __init__(self, run_dir: PathLike) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / self.filename
        self.events: List[dict] = []
        self._fh = None

    def _handle(self):
        # Lazily opened and then kept open: an open()/close() pair per
        # record is the dominant telemetry cost on the hot path.  Each
        # write is flushed, so the file stays valid line-by-line even
        # when a crash truncates the run.
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> None:
        """Record one event (in memory and to the stream file)."""
        record = dict(record)
        record.setdefault("time", time.time())
        self.events.append(record)
        fh = self._handle()
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()

    def append_many(self, records) -> None:
        """Record a batch of events with a single write/flush."""
        lines = []
        for record in records:
            record = dict(record)
            record.setdefault("time", time.time())
            self.events.append(record)
            lines.append(json.dumps(record, separators=(",", ":")) + "\n")
        if not lines:
            return
        fh = self._handle()
        fh.writelines(lines)
        fh.flush()

    def emit(self, kind: str, **fields) -> None:
        """``append`` with the ``kind`` spelled as an argument."""
        self.append({"kind": kind, **fields})

    def close(self) -> None:
        """Close the underlying file handle (reopened on next append)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    @classmethod
    def load(cls, run_dir: PathLike) -> List[dict]:
        """Parse every record of a run directory's stream file."""
        path = pathlib.Path(run_dir) / cls.filename
        return cls.load_path(path)

    @staticmethod
    def load_path(path: PathLike) -> List[dict]:
        path = pathlib.Path(path)
        if not path.exists():
            return []
        return [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
