"""Process-parallel sharded execution of the wind-tunnel step loop.

The paper scales the Stanford (McDonald-Baganoff) DSMC algorithm by
decomposing particles and cells across the Connection Machine's
processors.  This package is the reproduction's analogue on a
multi-core host: the cell grid is split into contiguous x-slabs
(:mod:`repro.parallel.shard`), one worker process steps each slab
(:mod:`repro.parallel.backend`), and particles that cross a slab
boundary migrate between workers through serialize-free shared-memory
buffers (:mod:`repro.parallel.exchange`) -- the software equivalent of
the CM-2 router moving a particle's state to its new home processor.

Determinism: every worker draws from a counter-based RNG stream keyed
by ``(seed, shard_id, step)`` (:func:`repro.rng.shard_stream`), so a
sharded run is run-to-run reproducible at any worker count, and the
one-worker backend degenerates exactly (bitwise) to the serial engine.
"""

from repro.parallel.backend import ShardedBackend
from repro.parallel.shard import ShardSlabs

__all__ = ["ShardedBackend", "ShardSlabs"]
