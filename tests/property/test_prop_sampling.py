"""Property-based tests of the macroscopic sampler's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import assign_cells
from repro.core.particles import ParticleArrays
from repro.core.sampling import CellSampler
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream
from repro.rng import make_rng


def population(seed, n, domain):
    rng = make_rng(seed)
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
    pop = ParticleArrays.from_freestream(
        rng, n, fs, (0, domain.width), (0, domain.height)
    )
    assign_cells(pop, domain)
    return pop


class TestSamplerProperties:
    @given(
        st.integers(min_value=1, max_value=2000),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_density_integrates_to_population(self, n, seed, snaps):
        d = Domain(8, 6)
        s = CellSampler(d)
        pop = population(seed, n, d)
        for _ in range(snaps):
            s.accumulate(pop)
        # Mean density times cell count equals the (constant) population.
        total = s.number_density().sum()
        assert np.isclose(total, n, rtol=1e-12)

    @given(
        st.integers(min_value=50, max_value=2000),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_momentum_consistency(self, n, seed):
        # Sum over cells of (count * mean velocity) equals the total
        # momentum of the population.
        d = Domain(8, 6)
        s = CellSampler(d)
        pop = population(seed, n, d)
        s.accumulate(pop)
        u, v, w = s.mean_velocity()
        counts = s.number_density()  # 1 snapshot, unit volumes
        assert np.isclose((counts * u).sum(), pop.u.sum(), rtol=1e-9)
        assert np.isclose((counts * v).sum(), pop.v.sum(), rtol=1e-9)

    @given(
        st.integers(min_value=50, max_value=1000),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_temperatures_nonnegative(self, n, seed):
        d = Domain(6, 5)
        s = CellSampler(d)
        pop = population(seed, n, d)
        s.accumulate(pop)
        assert (s.translational_temperature() >= 0).all()
        assert (s.rotational_temperature() >= 0).all()

    @given(
        st.integers(min_value=10, max_value=500),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_accumulate_is_additive(self, n, seed):
        # Accumulating the same snapshot twice doubles the counts and
        # leaves the (intensive) density unchanged.
        d = Domain(6, 5)
        s1, s2 = CellSampler(d), CellSampler(d)
        pop = population(seed, n, d)
        s1.accumulate(pop)
        s2.accumulate(pop)
        s2.accumulate(pop)
        assert np.allclose(s1.number_density(), s2.number_density())
        assert s2.steps == 2 * s1.steps
