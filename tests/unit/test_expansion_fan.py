"""Unit tests for the Prandtl-Meyer fan sampling and ray theory."""

import math

import numpy as np
import pytest

from repro.analysis.fields import stagnation_rise_profile
from repro.analysis.shock import expansion_fan_samples
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory


class TestExpansionFanRay:
    def test_zero_turn_is_leading_characteristic(self):
        m1 = 2.0
        ray, m2, ratio = theory.expansion_fan_ray(m1, 0.0, math.radians(30.0))
        assert m2 == pytest.approx(m1)
        assert ratio == pytest.approx(1.0)
        # Leading Mach line: flow direction + Mach angle.
        assert ray == pytest.approx(math.radians(30.0) + math.asin(1 / m1))

    def test_rays_rotate_clockwise_with_turn(self):
        m1 = 1.85
        rays = [
            theory.expansion_fan_ray(m1, math.radians(t), math.radians(30.0))[0]
            for t in (0.0, 10.0, 20.0, 30.0)
        ]
        assert all(a > b for a, b in zip(rays, rays[1:]))

    def test_density_falls_through_fan(self):
        m1 = 1.85
        ratios = [
            theory.expansion_fan_ray(m1, math.radians(t), 0.0)[2]
            for t in (0.0, 10.0, 20.0, 30.0)
        ]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] == pytest.approx(
            theory.expansion_density_ratio(m1, math.radians(30.0))
        )

    def test_negative_turn_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.expansion_fan_ray(2.0, -0.1, 0.0)

    def test_isentropic_ratio_identity(self):
        assert theory.isentropic_density_ratio(2.0, 2.0) == pytest.approx(1.0)
        assert theory.isentropic_density_ratio(2.0, 3.0) < 1.0


class TestFanSampling:
    def test_synthetic_centered_fan_recovered(self):
        # Build an analytic centered fan around a wedge corner and check
        # the sampler reads back the theoretical ratios.
        d = Domain(80, 50)
        w = Wedge(x_leading=15, base=20, angle_deg=30)
        m1 = 1.85
        cx, cy = w.corner
        x = np.arange(d.nx) + 0.5
        y = np.arange(d.ny) + 0.5
        xx, yy = np.meshgrid(x, y, indexing="ij")
        ang = np.arctan2(yy - cy, xx - cx)  # ray angle from corner
        # Invert ray -> turn by scanning the theory curve.
        turns = np.linspace(0.0, math.radians(40.0), 200)
        rays = np.array(
            [theory.expansion_fan_ray(m1, t, w.angle)[0] for t in turns]
        )
        ratios = np.array(
            [theory.expansion_fan_ray(m1, t, w.angle)[2] for t in turns]
        )
        # For each field point pick the matching characteristic state.
        idx = np.clip(np.searchsorted(-rays, -ang), 0, len(turns) - 1)
        plateau = 3.7
        rho = plateau * ratios[idx]
        rho[ang > rays[0]] = plateau  # upstream of the fan: post-shock
        meas, pred = expansion_fan_samples(
            rho, w, (10.0, 20.0, 30.0), mach_post_shock=m1, plateau=plateau
        )
        assert np.allclose(meas, pred, rtol=0.1)

    def test_plateau_validation(self):
        d = Domain(40, 30)
        w = Wedge(x_leading=10, base=10, angle_deg=30)
        with pytest.raises(ConfigurationError):
            expansion_fan_samples(np.ones(d.shape), w, (10.0,), 1.85, plateau=0.0)


class TestRiseProfileChord:
    def test_chord_fraction_validated(self):
        w = Wedge(x_leading=10, base=10, angle_deg=30)
        with pytest.raises(ConfigurationError):
            stagnation_rise_profile(np.ones((40, 30)), w, chord_fraction=0.0)
        with pytest.raises(ConfigurationError):
            stagnation_rise_profile(np.ones((40, 30)), w, chord_fraction=1.0)

    def test_probes_move_with_chord(self):
        w = Wedge(x_leading=10, base=10, angle_deg=30)
        rho = np.tile(np.arange(30, dtype=float), (40, 1))  # rho = y index
        early = stagnation_rise_profile(rho, w, (1.0,), chord_fraction=0.25)
        late = stagnation_rise_profile(rho, w, (1.0,), chord_fraction=0.9)
        assert late[0] > early[0]  # surface is higher near the corner
