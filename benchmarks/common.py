"""Shared configuration for the benchmark suite.

Scale is controlled by ``REPRO_FULL`` (see ``conftest.py``): the default
runs the paper's 98 x 64 geometry at reduced particle density; the full
mode reproduces the paper's 512k-particle schedule.
"""

from __future__ import annotations

import os
import pathlib

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))

#: The validation geometry (the paper's, both scales).
DOMAIN = Domain(98, 64)
WEDGE = Wedge(x_leading=20.0, base=25.0, angle_deg=30.0)

# Density 40/cell keeps the wake populated enough for the figure-2
# wake-shock physics (at 12/cell the wake is numerically collisionless);
# the paper runs ~80/cell.
DENSITY = 80.0 if FULL else 40.0
TRANSIENT_STEPS = 1200 if FULL else 400
AVERAGE_STEPS = 2000 if FULL else 350

OUT_DIR = pathlib.Path(__file__).parent / "out"


def telemetry_metrics(tel) -> dict:
    """JSON-safe telemetry snapshot for embedding in BENCH_*.json files.

    Benchmarks that run with a :class:`repro.telemetry.hub.Telemetry`
    attached call this to record what the hub observed (metric values,
    span counts) next to their timing numbers, so a regression in the
    numbers and a regression in the instrumentation are diagnosed from
    the same artifact.
    """
    if tel is None:
        return {}
    snap = tel.snapshot()
    # Prometheus-style sample dicts are already JSON-safe; keep only
    # scalar-bearing entries to bound the artifact size.
    return {
        "metrics": snap.get("metrics", {}),
        "spans": snap.get("spans", 0),
        "spans_dropped": snap.get("spans_dropped", 0),
    }


def run_solution(lambda_mfp: float, seed: int = 1989) -> Simulation:
    """Run the Mach-4 wedge problem to a time-averaged solution."""
    cfg = SimulationConfig(
        domain=DOMAIN,
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=lambda_mfp, density=DENSITY
        ),
        wedge=WEDGE,
        seed=seed,
    )
    sim = Simulation(cfg)
    sim.run(TRANSIENT_STEPS)
    sim.run(AVERAGE_STEPS, sample=True)
    return sim
