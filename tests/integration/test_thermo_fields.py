"""Thermodynamic-field validation: temperature and Mach structure."""

import math

import numpy as np
import pytest

from repro.analysis import thermo
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def wedge_run():
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=14.0),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=5,
    )
    sim = Simulation(cfg)
    sim.run(220)
    sim.run(220, sample=True)
    return sim


class TestFreestreamThermo:
    def test_freestream_temperature_unity(self, wedge_run):
        t = thermo.temperature_ratio_field(
            wedge_run.sampler, wedge_run.config.freestream
        )
        # Far field above the shock: T/T_inf ~ 1.
        assert t[5:12, 24:30].mean() == pytest.approx(1.0, abs=0.1)

    def test_freestream_mach_recovered(self, wedge_run):
        m = thermo.mach_field(wedge_run.sampler, wedge_run.config.freestream)
        assert m[5:12, 24:30].mean() == pytest.approx(4.0, rel=0.05)


class TestShockLayerThermo:
    def test_temperature_jump_matches_rankine_hugoniot(self, wedge_run):
        beta = theory.shock_angle(4.0, math.radians(30.0))
        mn = 4.0 * math.sin(beta)
        expected = theory.normal_shock_temperature_ratio(mn)
        measured = thermo.shock_layer_temperature_ratio(
            wedge_run.sampler, wedge_run.config.freestream,
            wedge_run.config.wedge,
        )
        assert measured == pytest.approx(expected, rel=0.12)

    def test_post_shock_mach_subsonic_normal(self, wedge_run):
        # Downstream Mach (flow frame) behind the oblique shock ~ 1.7.
        m = thermo.mach_field(wedge_run.sampler, wedge_run.config.freestream)
        expected = theory.post_oblique_shock_mach(4.0, math.radians(30.0))
        # Sample mid shock layer.
        layer = m[16:20, 5:8]
        assert layer.mean() == pytest.approx(expected, rel=0.15)

    def test_rotation_equilibrated_in_layer(self, wedge_run):
        r = thermo.rotational_nonequilibrium_field(wedge_run.sampler)
        # Near-continuum: rotation keeps up with translation everywhere
        # the statistics are meaningful.
        layer = r[16:20, 5:8]
        assert layer.mean() == pytest.approx(1.0, abs=0.1)

    def test_empty_layer_rejected(self, wedge_run):
        # A wedge too short to offer any interior columns.
        with pytest.raises(ConfigurationError):
            thermo.shock_layer_temperature_ratio(
                wedge_run.sampler,
                wedge_run.config.freestream,
                Wedge(x_leading=10.0, base=5.0, angle_deg=30.0),
            )


class TestRotationalLag:
    def test_slow_exchange_lags_in_shock(self):
        # With a small internal-exchange probability the shock layer
        # shows rotational temperature lag (T_rot < T_tr).
        cfg = SimulationConfig(
            domain=Domain(40, 26),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=12.0
            ),
            wedge=Wedge(x_leading=8.0, base=10.0, angle_deg=30.0),
            model=MolecularModel(internal_exchange_probability=0.05),
            seed=6,
        )
        sim = Simulation(cfg)
        sim.run(150)
        sim.run(150, sample=True)
        r = thermo.rotational_nonequilibrium_field(sim.sampler)
        layer = r[13:17, 4:7]
        assert layer.mean() < 0.9  # rotation visibly lags
