#!/usr/bin/env python
"""Production workflow: auto-detected steady state + checkpointed averaging.

The paper's run schedule ("1200 time steps to reach steady state and
then time averaged for a further 2000 timesteps") was hand-chosen.
This example shows the automated version this library supports:

1. run the transient with a steady-state detector watching the flow
   population and stop the moment it settles;
2. checkpoint the settled state to disk;
3. restore the checkpoint and run the averaging phase -- extendable at
   will by restoring again, without ever repeating the transient;
4. verify the restore is exact (bitwise-identical continuation).

Run:
    python examples/checkpoint_restart.py
"""

import pathlib
import tempfile
import time

import numpy as np

from repro import Domain, Freestream, Simulation, SimulationConfig, Wedge
from repro.analysis.convergence import SteadyStateDetector
from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.core.history import run_with_history
from repro.io.snapshots import load_simulation, save_simulation


def main() -> None:
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=12.0),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=7,
    )
    sim = Simulation(cfg)
    print(f"{sim.particles.n} particles; running transient with "
          "steady-state detection...")

    t0 = time.time()
    detector = SteadyStateDetector(window=30, tolerance=0.004, patience=8)
    history = run_with_history(
        sim, 600, detector=detector, stop_when_steady=True
    )
    print(
        f"steady state detected after {len(history)} steps "
        f"({time.time() - t0:.0f} s); population "
        f"{int(history.series('n_flow')[-1])}, mass-balance residual "
        f"{history.mass_balance_residual():.2e}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = pathlib.Path(tmp) / "steady.npz"
        save_simulation(sim, ckpt)
        print(f"checkpoint written: {ckpt.stat().st_size / 1e6:.1f} MB")

        # Averaging phase from the checkpoint.
        averaged = load_simulation(ckpt)
        averaged.run(250, sample=True)
        rho = averaged.density_ratio_field()
        fit = fit_shock_angle(rho, cfg.wedge)
        plateau = post_shock_plateau(rho, cfg.wedge, fit)
        print(
            f"averaged 250 steps from the checkpoint: shock angle "
            f"{fit.angle_deg:.2f} deg, density ratio {plateau:.2f}"
        )

        # Exactness check: continue the original and a fresh restore in
        # lockstep; they must agree bit for bit.
        twin = load_simulation(ckpt)
        sim.run(30)
        twin.run(30)
        identical = np.array_equal(sim.particles.x, twin.particles.x)
        print(f"restore is bitwise-exact over 30 further steps: {identical}")


if __name__ == "__main__":
    main()
