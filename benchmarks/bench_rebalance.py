"""REBALANCE -- adaptive load balancing vs the static slab split.

Runs the paper's Mach-4 wedge at ``--workers 2`` twice from the same
seed -- once on the static equal-width decomposition and once with the
cadenced rebalancer (``--balance every:10`` equivalent) -- and reports
per-run max-over-mean shard imbalance (mean over the measured window
and final), sharded us/particle/step, and the rebalance event counts.

The acceptance signal is the *measured imbalance*: the shock piles
particles into the slabs under the wedge, the static split eats that
skew forever, the rebalancer works it back toward 1.  On a single-core
host the wall-clock columns mostly account overhead (two workers
time-share one core); on real multi-core hosts lower imbalance is
lower wall-clock, which is why the imbalance column is the one the
regression check guards.

Standalone: ``PYTHONPATH=src python benchmarks/bench_rebalance.py``
writes ``BENCH_rebalance.json`` at the repository root.

CI smoke mode: ``--steps 30 --check-against BENCH_rebalance.json``
runs a short measurement and exits non-zero when the balanced run's
steady-state imbalance regresses beyond ``--tolerance`` over the
committed record, or when rebalancing stops firing at all.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.parallel.backend import ShardedBackend
from repro.parallel.rebalance import RebalanceConfig
from repro.physics.freestream import Freestream
from repro.telemetry.observables import load_imbalance

WARMUP_STEPS = 10
TIMED_STEPS = 120
WORKERS = 2
CADENCE = 10
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def default_config(density: float = 24.0, seed: int = 1989) -> SimulationConfig:
    """The paper's Mach-4 wedge geometry at a benchmark density."""
    return SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=seed,
    )


def _timed_run(config: SimulationConfig, steps: int, balanced: bool):
    rb = RebalanceConfig(every=CADENCE) if balanced else None
    backend = ShardedBackend(WORKERS, rebalance=rb)
    sim = Simulation(config, backend=backend)
    imb_series = []
    try:
        sim.run(WARMUP_STEPS)
        t0 = time.perf_counter()
        for _ in range(steps):
            sim.step()
            imb_series.append(float(load_imbalance(backend.shard_loads())))
        elapsed = time.perf_counter() - t0
        n = sim.particles.n
        record = {
            "steps_per_sec": steps / elapsed,
            "us_per_particle_step": elapsed / steps / n * 1e6,
            "imbalance_mean": sum(imb_series) / len(imb_series),
            "imbalance_final": imb_series[-1],
            "imbalance_max": max(imb_series),
            "rebalances": backend.rebalance_count,
            "rebalances_skipped": backend.rebalance_skipped,
            "columns_moved": backend.rebalance_columns_moved,
            "final_edges": list(backend.slab_edges),
        }
        return record, n
    finally:
        sim.close()


def run_benchmark(
    config: SimulationConfig | None = None, steps: int = TIMED_STEPS
) -> dict:
    """Measure static and balanced runs; return the comparison record."""
    config = config or default_config()
    static, n = _timed_run(config, steps, balanced=False)
    balanced, _ = _timed_run(config, steps, balanced=True)
    return {
        "bench": "rebalance",
        "config": {
            "domain": [config.domain.nx, config.domain.ny],
            "mach": config.freestream.mach,
            "density": config.freestream.density,
            "lambda_mfp": config.freestream.lambda_mfp,
            "seed": config.seed,
            "workers": WORKERS,
            "cadence": CADENCE,
        },
        "n_particles": n,
        "timed_steps": steps,
        "static": static,
        "balanced": balanced,
        "imbalance_reduction": (
            static["imbalance_mean"] / balanced["imbalance_mean"]
        ),
    }


def check_against(result: dict, baseline_path: pathlib.Path,
                  tolerance: float) -> bool:
    """True when the balanced run still balances.

    Guards the steady-state (mean) imbalance of the balanced run
    against the committed record -- the quantity the feature exists to
    lower, and one that is machine-speed independent -- and that the
    rebalancer actually fired.
    """
    baseline = json.loads(baseline_path.read_text())
    ref = baseline["balanced"]["imbalance_mean"]
    got = result["balanced"]["imbalance_mean"]
    ratio = got / ref
    print(
        f"regression check: balanced imbalance {got:.4f} vs baseline "
        f"{ref:.4f} ({ratio:.2f}x, tolerance {1 + tolerance:.2f}x)"
    )
    if result["balanced"]["rebalances"] < 1:
        print("FAIL: the rebalancer never fired")
        return False
    return ratio <= 1.0 + tolerance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--steps", type=int, default=TIMED_STEPS,
        help="timed steps per run (smoke runs use ~30)",
    )
    parser.add_argument(
        "--density", type=float, default=24.0,
        help="particles per cell (smoke runs can lower this)",
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help="committed BENCH_rebalance.json to compare with; "
             "exits 1 on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional imbalance regression (default 0.10)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        config=default_config(density=args.density), steps=args.steps
    )
    if args.check_against is None:
        out = REPO_ROOT / "BENCH_rebalance.json"
        out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"particles: {result['n_particles']}, workers {WORKERS}, "
          f"cadence every:{CADENCE}")
    for name in ("static", "balanced"):
        r = result[name]
        print(
            "{:<9s}: imbalance mean {:.3f} / final {:.3f} / max {:.3f}  "
            "{:.3f} us/p/step  ({} rebalances, {} columns)".format(
                name, r["imbalance_mean"], r["imbalance_final"],
                r["imbalance_max"], r["us_per_particle_step"],
                r["rebalances"], r["columns_moved"],
            )
        )
    print("imbalance reduction: {:.2f}x".format(result["imbalance_reduction"]))
    if args.check_against is not None:
        if not check_against(result, args.check_against, args.tolerance):
            print("FAIL: adaptive balancing regressed")
            return 1
        print("OK: within tolerance of the committed baseline")
    else:
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
