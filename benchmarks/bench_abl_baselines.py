"""ABL4 -- the selection-rule comparison the paper argues in prose.

"Selection of Collision Partners" contrasts Bird's per-cell time
counter (cell-level parallelism, population-fluctuation sensitivity),
Nanbu/Ploss (particle-level but only cell-mean conservation) and the
McDonald-Baganoff rule (particle-level *and* exactly conserving).  The
bench runs all three on an identical heat-bath relaxation and reports
throughput, conservation drift and equilibrium quality.
"""

from repro.analysis.report import ExperimentRecord
from repro.baselines import (
    BaganoffSelection,
    BirdNTC,
    BirdTimeCounter,
    HeatBath,
    NanbuPloss,
)
from repro.physics.freestream import Freestream

N_PARTICLES = 30_000
N_CELLS = 300
STEPS = 12


def test_abl_selection_schemes(benchmark, emit):
    fs = Freestream(
        mach=4.0, c_mp=0.14, lambda_mfp=2.0, density=N_PARTICLES / N_CELLS
    )
    bath = HeatBath(n_particles=N_PARTICLES, n_cells=N_CELLS, freestream=fs)

    results = {}
    for scheme in (BirdTimeCounter(fs), BirdNTC(fs), NanbuPloss(fs)):
        results[scheme.name] = bath.run(scheme, steps=STEPS, seed=9)

    def run_baganoff():
        return bath.run(BaganoffSelection(fs), steps=STEPS, seed=9)

    results["mcdonald-baganoff"] = benchmark(run_baganoff)

    mb = results["mcdonald-baganoff"]
    bird = results["bird-time-counter"]
    nanbu = results["nanbu-ploss"]

    ntc = results["bird-ntc"]

    rec = ExperimentRecord("ABL4", "collision-scheme comparison (heat bath)")
    rec.add("energy drift, mcdonald-baganoff", 0.0, mb.energy_drift, rel_tol=1e-9)
    rec.add("energy drift, bird", 0.0, bird.energy_drift, rel_tol=1e-9)
    rec.add("energy drift, bird-ntc", 0.0, ntc.energy_drift, rel_tol=1e-9)
    rec.add(
        "collisions, ntc vs time counter",
        float(bird.total_collisions),
        float(ntc.total_collisions),
        rel_tol=0.1,
        note="the later standard agrees on the kinetic rate",
    )
    rec.add(
        "energy drift, nanbu-ploss",
        None,
        nanbu.energy_drift,
        note="only cell-mean conservation: the paper's criticism",
    )
    rec.add(
        "momentum drift, nanbu-ploss",
        None,
        nanbu.momentum_drift,
    )
    rec.add(
        "throughput advantage over bird (x)",
        None,
        bird.seconds / max(mb.seconds, 1e-12),
        note="fine-grained vectorization vs per-cell counter loop",
    )
    rec.add(
        "collisions, baganoff vs bird",
        float(bird.total_collisions),
        float(mb.total_collisions),
        rel_tol=0.15,
        note="same kinetic rate",
    )
    emit(rec)

    assert mb.energy_drift < 1e-10
    assert nanbu.energy_drift > 1e-6
    assert mb.seconds < bird.seconds
