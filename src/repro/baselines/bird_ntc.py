"""Bird's no-time-counter (NTC) scheme -- the later standard.

The paper compares against Bird's *time counter* (the state of the art
in 1988).  Bird replaced it soon after with the **no-time-counter**
scheme that modern DSMC codes (SPARTA, dsmcFoam, Bird's own DS2V) use:
per cell, a majorant number of candidate pairs

    N_cand = 1/2 * N * (N-1) * F_N * (sigma g)_max * dt / V_cell

is drawn, and each candidate collides with probability
``sigma g / (sigma g)_max``.  Unlike the time counter it needs no
per-cell serial loop (all candidates are independent), and unlike the
McDonald-Baganoff rule it draws a *variable* number of pairs per cell
with replacement.

Included as the bridge between the paper's incumbent and the paper's
contribution: the ablation suite can show all three selection schemes
agree on the physics while differing exactly where the paper says they
do (parallel granularity, conservation, fluctuation sensitivity).

For Maxwell molecules ``sigma g`` is constant, so the acceptance
probability is 1 and NTC degenerates to drawing a Poisson-binomial
number of always-accepted pairs -- the cleanest possible comparison
against the pairwise selection rule's fixed N/2 candidates.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT
from repro.core.collision import collide_pairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel, maxwell_molecule


class BirdNTC:
    """Bird's no-time-counter selection (majorant-frequency scheme)."""

    name = "bird-ntc"

    def __init__(
        self,
        freestream: Freestream,
        model: MolecularModel = None,
        majorant_factor: float = 1.5,
    ) -> None:
        if freestream.is_near_continuum:
            raise ConfigurationError("NTC needs a finite mean free path")
        if majorant_factor < 1.0:
            raise ConfigurationError("majorant factor must be >= 1")
        self.freestream = freestream
        self.model = model or maxwell_molecule()
        self.majorant_factor = majorant_factor
        # Maxwell molecules: sigma g = c_bar / (lambda n_inf), constant.
        self._sigma_g_ref = freestream.mean_speed / (
            freestream.lambda_mfp * freestream.density
        )

    def collide_step(
        self, particles: ParticleArrays, n_cells: int, rng: np.random.Generator
    ) -> int:
        """Draw majorant candidates per cell; accept by sigma-g ratio."""
        n = particles.n
        if n < 2:
            return 0
        cell = particles.cell
        counts = np.bincount(cell, minlength=n_cells)

        # Majorant candidates per cell (unit cell volume, F_N = 1):
        # 1/2 N (N-1) (sigma g)_max dt, fractional part resolved
        # probabilistically.
        sig_max = self._sigma_g_ref * self.majorant_factor
        expected = 0.5 * counts * np.maximum(counts - 1, 0) * sig_max * DT
        n_cand = expected.astype(np.int64)
        n_cand += rng.random(n_cells) < (expected - n_cand)

        # Draw candidate pairs per cell (with replacement, as NTC does).
        order = np.argsort(cell, kind="stable")
        starts = np.zeros(n_cells, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])

        cells_with = np.flatnonzero((n_cand > 0) & (counts >= 2))
        total = 0
        firsts_all, seconds_all = [], []
        for c in cells_with:
            k = int(n_cand[c])
            base = starts[c]
            i = rng.integers(0, counts[c], size=k)
            j = rng.integers(0, counts[c], size=k)
            ok = i != j
            a = order[base + i[ok]]
            b = order[base + j[ok]]
            if self.model.is_maxwell:
                # sigma g is constant: acceptance = 1 / majorant factor.
                acc = rng.random(a.size) < 1.0 / self.majorant_factor
            else:
                du = particles.u[a] - particles.u[b]
                dv = particles.v[a] - particles.v[b]
                dw = particles.w[a] - particles.w[b]
                g = np.sqrt(du * du + dv * dv + dw * dw)
                g_ref = np.sqrt(2.0) * self.freestream.mean_speed
                ratio = self.model.speed_factor(g, g_ref) / self.majorant_factor
                acc = rng.random(a.size) < ratio
            firsts_all.append(a[acc])
            seconds_all.append(b[acc])
        if not firsts_all:
            return 0
        firsts = np.concatenate(firsts_all)
        seconds = np.concatenate(seconds_all)

        # NTC draws with replacement, so a particle can appear in two
        # accepted pairs in one step; collisions must then apply
        # sequentially.  Batch the disjoint majority, loop the overlap.
        total += _collide_with_overlaps(particles, firsts, seconds, rng)
        return total

    def expected_collisions_per_step(self, n_particles: int) -> float:
        """True kinetic rate (the majorant thinning cancels out)."""
        nu = self.freestream.mean_speed / self.freestream.lambda_mfp
        return 0.5 * n_particles * nu * DT


def _collide_with_overlaps(
    particles: ParticleArrays,
    firsts: np.ndarray,
    seconds: np.ndarray,
    rng: np.random.Generator,
) -> int:
    """Apply collisions whose pairs may share particles.

    Greedy rounds: each round takes the not-yet-seen-this-round pairs
    (disjoint by construction) and batches them; repeats until all
    pairs applied.  Order within the original draw is preserved across
    rounds only approximately -- acceptable, since NTC's with-
    replacement draw has no canonical order either.
    """
    n_done = 0
    remaining = np.ones(firsts.size, dtype=bool)
    while remaining.any():
        seen = set()
        take = []
        for idx in np.flatnonzero(remaining):
            a, b = int(firsts[idx]), int(seconds[idx])
            if a in seen or b in seen:
                continue
            seen.add(a)
            seen.add(b)
            take.append(idx)
        take = np.asarray(take, dtype=np.int64)
        collide_pairs(particles, firsts[take], seconds[take], rng=rng)
        n_done += take.size
        remaining[take] = False
    return n_done
