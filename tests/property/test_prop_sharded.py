"""Properties of one sharded step versus one serial step.

The sharded backend claims a strong invariant: sharding is an
*implementation* of the serial step, not an approximation of it.  After
one step from a common initial state,

* no particle is created or destroyed -- the serial population equals
  the sharded flow population plus the reservoir plus any reservoir
  flux still in transit between shards, and
* the flow field is untouched -- the per-cell occupancy histogram of
  the sharded run equals the serial one exactly (particle *order* may
  differ across the shard boundary; physics may not).

Checked across random seeds with the in-process (inline) execution
mode, which is bitwise identical to the process mode (see
``tests/integration/test_sharded.py``) and cheap enough for Hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.parallel.backend import ShardedBackend
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.sharded

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _config(seed: int) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=24, ny=12),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0),
        wedge=Wedge(x_leading=6.0, base=7.0, angle_deg=30.0),
        seed=seed,
    )


class TestOneStepTwoWorkers:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_count_conserved_and_histogram_matches_serial(self, seed):
        serial = Simulation(_config(seed))
        sharded = Simulation(
            _config(seed), backend=ShardedBackend(2, processes=False)
        )
        try:
            n_cells = serial.config.domain.n_cells
            total0 = serial.particles.n + serial.reservoir.particles.n
            serial.step()
            sharded.step()
            sharded.gather()

            total = (
                sharded.particles.n
                + sharded.reservoir.particles.n
                + sharded.backend.pending_flux
            )
            assert total == serial.particles.n + serial.reservoir.particles.n
            # The serial engine conserves particles; sharding must too.
            assert total == total0

            hist_serial = np.bincount(serial.particles.cell, minlength=n_cells)
            hist_sharded = np.bincount(
                sharded.particles.cell, minlength=n_cells
            )
            assert np.array_equal(hist_serial, hist_sharded)
        finally:
            sharded.close()
