"""Velocity distribution sampling and diagnostics.

Units follow the Baganoff normalization (see ``repro.constants``): the
*most probable speed* ``c_mp = sqrt(2 R T)`` is the temperature handle,
so a Maxwellian velocity component has standard deviation
``sigma = c_mp / sqrt(2)``.

The paper's reservoir trick motivates the **rectangular** sampler:
"These particles are given velocities from a rectangular distribution
with the same variance as the freestream, therefore after a few time
steps collisions with other reservoir particles relaxes these to the
correct Gaussian distributions."  Sampling a uniform needs only one
cheap random draw, against either "costly calls to transcendental
functions or repeated calls to a random number generator" for a direct
Gaussian -- the right trade on a bit-serial machine.

Diagnostics (component variance, excess kurtosis, energy shares) back
the property tests that verify the relaxation actually happens.
"""

from __future__ import annotations

import math
import numpy as np

from repro.errors import ConfigurationError


def sigma_from_cmp(c_mp: float) -> float:
    """Per-component standard deviation of a Maxwellian, c_mp / sqrt(2)."""
    if c_mp <= 0:
        raise ConfigurationError(f"c_mp must be positive, got {c_mp}")
    return c_mp / math.sqrt(2.0)


def sample_maxwellian(
    rng: np.random.Generator,
    n: int,
    c_mp: float,
    drift: tuple = (0.0, 0.0, 0.0),
    components: int = 3,
) -> np.ndarray:
    """Sample an equilibrium (Maxwellian) velocity distribution.

    Returns an ``(n, components)`` float64 array.  Each component is an
    independent Gaussian with standard deviation ``c_mp / sqrt(2)``
    shifted by the corresponding ``drift`` entry (missing drift entries
    default to zero, so rotational components can reuse this sampler).
    """
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    sigma = sigma_from_cmp(c_mp)
    out = rng.normal(0.0, sigma, size=(n, components))
    for i, d in enumerate(drift[:components]):
        if d:
            out[:, i] += d
    return out


def sample_rectangular(
    rng: np.random.Generator,
    n: int,
    c_mp: float,
    drift: tuple = (0.0, 0.0, 0.0),
    components: int = 3,
) -> np.ndarray:
    """Sample the reservoir's rectangular (uniform) distribution.

    Matches the Maxwellian variance per component: a uniform on
    ``[-a, a]`` has variance ``a**2 / 3``, so ``a = sigma * sqrt(3)``.
    One uniform draw per component -- the cheap sampler the paper uses
    when parking particles in the reservoir, relying on reservoir
    self-collisions to Gaussianize them.
    """
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    a = sigma_from_cmp(c_mp) * math.sqrt(3.0)
    out = rng.uniform(-a, a, size=(n, components))
    for i, d in enumerate(drift[:components]):
        if d:
            out[:, i] += d
    return out


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------

def component_variance(velocities: np.ndarray) -> np.ndarray:
    """Variance of each velocity component (about its own mean)."""
    v = np.asarray(velocities, dtype=np.float64)
    if v.ndim != 2:
        raise ConfigurationError("velocities must be (n, components)")
    return v.var(axis=0)


def excess_kurtosis(samples: np.ndarray) -> np.ndarray:
    """Excess kurtosis per component (0 for a Gaussian, -1.2 uniform).

    The reservoir relaxation test watches this rise from the rectangular
    value (-1.2) to ~0 as self-collisions Gaussianize the population.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    mu = x.mean(axis=0)
    centered = x - mu
    m2 = (centered**2).mean(axis=0)
    m4 = (centered**4).mean(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        k = np.where(m2 > 0, m4 / m2**2 - 3.0, 0.0)
    return k


def temperature_from_velocities(
    velocities: np.ndarray, c_mp_reference: bool = False
) -> float:
    """Kinetic temperature proxy: mean peculiar kinetic energy per DOF.

    Returns ``<c'^2>`` per component (= R T in physical units).  With
    ``c_mp_reference=True`` returns the corresponding most probable
    speed ``sqrt(2 <c'^2>)`` instead.
    """
    v = np.asarray(velocities, dtype=np.float64)
    if v.ndim != 2:
        raise ConfigurationError("velocities must be (n, components)")
    rt = v.var(axis=0).mean()
    if c_mp_reference:
        return math.sqrt(2.0 * rt)
    return float(rt)


def energy_shares(
    translational: np.ndarray, rotational: np.ndarray
) -> tuple:
    """Fractions of *thermal* energy in translation and rotation.

    Translational thermal energy removes the bulk drift (per-component
    mean); rotational velocity has no bulk part in this model.  At
    equilibrium a diatomic gas holds 3/5 translational, 2/5 rotational.
    """
    t = np.asarray(translational, dtype=np.float64)
    r = np.asarray(rotational, dtype=np.float64)
    e_tr = t.var(axis=0).sum()  # sum over components of <c'^2>
    e_rot = (r**2).mean(axis=0).sum() if r.size else 0.0
    total = e_tr + e_rot
    if total == 0:
        return 0.0, 0.0
    return float(e_tr / total), float(e_rot / total)


def speed_distribution_chi2(
    velocities: np.ndarray,
    c_mp: float,
    n_bins: int = 24,
) -> float:
    """Chi-squared-per-bin distance of speeds from the Maxwell speed pdf.

    Bins particle speeds and compares against the analytic Maxwell speed
    distribution ``f(c) = (4/sqrt(pi)) (c^2/c_mp^3) exp(-c^2/c_mp^2)``.
    Used by equilibrium tests: values of order 1 indicate agreement at
    the statistical noise level.
    """
    v = np.asarray(velocities, dtype=np.float64)
    if v.ndim != 2 or v.shape[1] != 3:
        raise ConfigurationError("velocities must be (n, 3)")
    speeds = np.sqrt((v**2).sum(axis=1))
    n = speeds.size
    if n < 100:
        raise ConfigurationError("need >= 100 samples for a chi2 test")
    edges = np.linspace(0.0, 3.0 * c_mp, n_bins + 1)
    counts, _ = np.histogram(speeds, bins=edges)
    x = edges / c_mp
    # CDF of the Maxwell speed distribution at the bin edges.
    from scipy.special import erf

    cdf_vals = erf(x) - 2.0 / math.sqrt(math.pi) * x * np.exp(-(x**2))
    probs = np.diff(cdf_vals)
    expected = probs * n
    mask = expected > 5  # standard chi2 validity threshold
    chi2 = ((counts[mask] - expected[mask]) ** 2 / expected[mask]).sum()
    return float(chi2 / max(mask.sum(), 1))
