"""Per-virtual-processor data fields with cost-charged operations.

A :class:`Field` is the emulation's analogue of a C*/Paris *parallel
variable*: one value per virtual processor, stored as a NumPy array.
Arithmetic between fields charges bit-serial ALU costs to the attached
:class:`~repro.cm.timing.CostModel` (if any), so code written against
fields is automatically accounted.

Fields also carry the CM notion of a *context*: a boolean activity mask.
Operations compute everywhere (the SIMD hardware burns the cycles
regardless) but :meth:`Field.merge` only commits results where the
context is set -- exactly the semantics of `where` blocks in C*.

The physics engines mostly use raw arrays plus explicit cost charges
(hot paths), but the substrate is complete and independently tested, and
the scan/sort/router modules accept fields or arrays interchangeably.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.cm.machine import VPGeometry
from repro.cm.timing import CostModel
from repro.errors import MachineError

ArrayOrField = Union[np.ndarray, "Field", int, float]


class Field:
    """A per-VP value array bound to a geometry and optional cost model.

    Parameters
    ----------
    data:
        1-D array with one element per virtual processor.
    geometry:
        The VP geometry the field lives on.
    cost:
        Optional cost model; when present every elementwise operation
        charges ``bits`` ALU bit-ops per VP slice.
    bits:
        Declared operand width for cost purposes (default 32, the
        paper's fixed-point word).
    """

    __slots__ = ("data", "geometry", "cost", "bits")

    def __init__(
        self,
        data: np.ndarray,
        geometry: VPGeometry,
        cost: Optional[CostModel] = None,
        bits: int = 32,
    ) -> None:
        data = np.asarray(data)
        if data.ndim != 1:
            raise MachineError("fields are one value per VP (1-D)")
        if data.shape[0] != geometry.n_virtual:
            raise MachineError(
                f"field length {data.shape[0]} != VP set size "
                f"{geometry.n_virtual}"
            )
        self.data = data
        self.geometry = geometry
        self.cost = cost
        self.bits = bits

    # -- construction helpers -------------------------------------------

    @classmethod
    def zeros(
        cls,
        geometry: VPGeometry,
        dtype=np.int32,
        cost: Optional[CostModel] = None,
        bits: int = 32,
    ) -> "Field":
        return cls(np.zeros(geometry.n_virtual, dtype=dtype), geometry, cost, bits)

    @classmethod
    def from_scalar(
        cls,
        value,
        geometry: VPGeometry,
        dtype=np.int32,
        cost: Optional[CostModel] = None,
        bits: int = 32,
    ) -> "Field":
        return cls(
            np.full(geometry.n_virtual, value, dtype=dtype), geometry, cost, bits
        )

    def like(self, data: np.ndarray) -> "Field":
        """Wrap ``data`` with this field's geometry/cost/bits."""
        return Field(data, self.geometry, self.cost, self.bits)

    # -- internals --------------------------------------------------------

    def _coerce(self, other: ArrayOrField) -> np.ndarray:
        if isinstance(other, Field):
            if other.geometry is not self.geometry and (
                other.geometry != self.geometry
            ):
                raise MachineError("fields live on different VP geometries")
            return other.data
        return other  # scalar or ndarray; numpy broadcasting applies

    def _charge(self, nops: float = 1.0) -> None:
        if self.cost is not None:
            self.cost.elementwise(bits=self.bits, nops=nops)

    def _binop(self, other: ArrayOrField, fn) -> "Field":
        self._charge()
        return self.like(fn(self.data, self._coerce(other)))

    # -- arithmetic (each charges one elementwise op) ---------------------

    def __add__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.add)

    def __radd__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, lambda a, b: np.add(b, a))

    def __sub__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.subtract)

    def __rsub__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, lambda a, b: np.subtract(b, a))

    def __mul__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.multiply)

    def __rmul__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, lambda a, b: np.multiply(b, a))

    def __floordiv__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.floor_divide)

    def __mod__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.mod)

    def __rshift__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.right_shift)

    def __lshift__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.left_shift)

    def __and__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.bitwise_and)

    def __or__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.bitwise_or)

    def __xor__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.bitwise_xor)

    def __neg__(self) -> "Field":
        self._charge()
        return self.like(-self.data)

    # -- comparisons -------------------------------------------------------

    def __lt__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.less)

    def __le__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.less_equal)

    def __gt__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.greater)

    def __ge__(self, other: ArrayOrField) -> "Field":
        return self._binop(other, np.greater_equal)

    def eq(self, other: ArrayOrField) -> "Field":
        """Elementwise equality (named method; ``==`` is identity-free)."""
        return self._binop(other, np.equal)

    # -- context / merge ----------------------------------------------------

    def merge(self, other: ArrayOrField, context: ArrayOrField) -> "Field":
        """Commit ``other`` where ``context`` is true, else keep self.

        The C* `where` semantics: cost of a full elementwise op is
        charged regardless of how many VPs are active.
        """
        self._charge()
        ctx = self._coerce(context)
        return self.like(np.where(ctx, self._coerce(other), self.data))

    # -- reductions (global OR / sum via the scan tree) ----------------------

    def global_sum(self):
        """Sum over all VPs (charged as one scan)."""
        if self.cost is not None:
            self.cost.scan(bits=self.bits, nscans=1)
        return self.data.sum()

    def global_max(self):
        """Maximum over all VPs (charged as one scan)."""
        if self.cost is not None:
            self.cost.scan(bits=self.bits, nscans=1)
        return self.data.max()

    def global_or(self) -> bool:
        """The CM's fast global-OR wire (charged as 1-bit scan)."""
        if self.cost is not None:
            self.cost.scan(bits=1, nscans=1)
        return bool(np.any(self.data))

    def __len__(self) -> int:
        return self.geometry.n_virtual

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Field(n={self.geometry.n_virtual}, vpr={self.geometry.vpr}, "
            f"dtype={self.data.dtype}, bits={self.bits})"
        )
