#!/usr/bin/env python
"""Figure 7: per-particle time vs problem size on the emulated CM-2.

Runs the fixed-point CM engine across virtual-processor ratios 1..16 on
a scaled machine, converts the measured cost ledger with the calibrated
timing model, and prints the figure-7 curve next to the structural
model's prediction for the paper's full 32k-processor machine.

Run:
    python examples/cm_timing_curve.py
"""

import numpy as np

from repro import CMSimulation, Domain, Freestream, SimulationConfig
from repro.cm.machine import CM2
from repro.cm.timing import CM2TimingModel
from repro.constants import PAPER_CM2_PROCESSORS

SCALED_PROCESSORS = 512
VP_RATIOS = (1, 2, 4, 8, 16)


def main() -> None:
    machine = CM2(n_processors=SCALED_PROCESSORS)
    tm = CM2TimingModel(machine=machine)
    tm_paper = CM2TimingModel(machine=CM2(n_processors=PAPER_CM2_PROCESSORS))

    print(f"emulated machine: {SCALED_PROCESSORS} physical processors")
    print(f"{'VPR':>4s} {'particles':>10s} {'measured us':>12s} "
          f"{'model us':>9s}   phase breakdown (measured)")
    for vpr in VP_RATIOS:
        n_target = SCALED_PROCESSORS * vpr
        ny = max(int(np.sqrt(n_target / 16.0)), 6)
        nx = 2 * ny
        cfg = SimulationConfig(
            domain=Domain(nx, ny),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5,
                density=n_target / (nx * ny),
            ),
            wedge=None,
            seed=7,
        )
        sim = CMSimulation(cfg, machine=machine)
        sim.run(6)
        pb = sim.phase_breakdown(tm)
        model = tm_paper.predict_curve([PAPER_CM2_PROCESSORS * vpr])[
            PAPER_CM2_PROCESSORS * vpr
        ]
        phases = "  ".join(
            f"{k}={v:4.2f}" for k, v in pb.us_per_particle.items()
        )
        print(
            f"{vpr:4d} {sim.state.n:10d} {pb.total:12.2f} "
            f"{model.total:9.2f}   {phases}"
        )

    print(
        "\nThe paper's figure 7: ~10.5 us/particle/step at VPR 1 falling "
        "to 7.2 at VPR 16,\nwith the largest step from VPR 1 to 2 "
        "(collision pair traffic moves on-chip)."
    )


if __name__ == "__main__":
    main()
