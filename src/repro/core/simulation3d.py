"""Three-dimensional wind-tunnel driver (the Future Work extension).

Runs the identical algorithm in a z-periodic slab: the wedge is an
infinite prism, particles carry a z position advanced by their (already
3-D) w velocity, cells are unit cubes, and the collision machinery --
sort, even/odd pairing, selection rule, permutation collision -- is
reused *unchanged* (it never looked at positions beyond the cell
index).

Validation built into the design: span-collapsing the 3-D solution must
reproduce the 2-D solution of the same x-y configuration (the
integration tests check the shock angle and density ratio match).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_SORT_SCALE
from repro.core.boundary import WindTunnelBoundaries
from repro.core.cells import cell_populations
from repro.core.collision import collide_pairs
from repro.core.pairing import even_odd_pairs, pairing_efficiency
from repro.core.particles import ParticleArrays
from repro.core.reservoir import Reservoir
from repro.core.sampling import CellSampler
from repro.core.selection import select_collisions
from repro.core.sortstep import sort_by_cell
from repro.errors import ConfigurationError
from repro.geometry.domain3d import Domain3D
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel, maxwell_molecule
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Simulation3DConfig:
    """Configuration of a 3-D slab run.

    ``freestream.density`` is particles per unit *cube*; the span is
    periodic, so the 2-D solution at the same areal density
    (``density * nz`` per x-y column) is the reference.
    """

    domain: Domain3D = field(default_factory=Domain3D)
    freestream: Freestream = field(default_factory=Freestream)
    wedge: Optional[Wedge] = field(default_factory=Wedge)
    model: MolecularModel = field(default_factory=maxwell_molecule)
    sort_scale: int = DEFAULT_SORT_SCALE
    plunger_trigger: float = 4.0
    reservoir_fraction: float = 0.1
    reservoir_mix_rounds: int = 1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.wedge is not None:
            self.wedge.validate_in(self.domain.xy_domain())
        self.freestream.check_selection_rule_validity()


class Simulation3D:
    """The z-periodic slab wind tunnel."""

    def __init__(self, config: Simulation3DConfig) -> None:
        self.config = config
        self.rng = make_rng(config.seed)
        self.step_count = 0
        dom = config.domain

        xy = dom.xy_domain()
        if config.wedge is not None:
            vf_xy = config.wedge.open_volume_fractions(xy)
        else:
            vf_xy = np.ones(xy.shape)
        #: Open volume fraction per 3-D cell: the prism cuts every
        #: z-slab identically.
        self.volume_fractions_xy = vf_xy
        self._vf3_flat = np.repeat(vf_xy.reshape(-1), dom.nz)

        # Boundary machinery is shared with 2-D (x-y walls + plunger);
        # z periodicity is applied separately each step.
        self.boundaries = WindTunnelBoundaries(
            domain=xy,
            freestream=config.freestream,
            wedge=config.wedge,
            plunger_trigger=config.plunger_trigger,
            span_depth=dom.depth,
        )
        self.reservoir = Reservoir(
            config.freestream, rotational_dof=config.model.rotational_dof
        )
        self.particles = self._seed_flow()
        self.reservoir.deposit(
            self.rng, int(round(config.reservoir_fraction * self.particles.n))
        )
        #: Span-collapsed sampler: time averages accumulate on the x-y
        #: grid (the 3-D field's z-average, which is also the 2-D
        #: reference field).
        self.sampler = CellSampler(xy, vf_xy)
        self._assign_cells()

    # -- setup ------------------------------------------------------------

    def _seed_flow(self) -> ParticleArrays:
        cfg = self.config
        dom = cfg.domain
        open_volume = float(self._vf3_flat.sum())
        n = int(round(cfg.freestream.density * open_volume))
        parts = ParticleArrays.from_freestream(
            self.rng,
            n,
            cfg.freestream,
            x_range=(0.0, dom.width),
            y_range=(0.0, dom.height),
            rotational_dof=cfg.model.rotational_dof,
        )
        parts.z = self.rng.uniform(0.0, dom.depth, size=n)
        if cfg.wedge is not None:
            for _ in range(64):
                bad = cfg.wedge.inside(parts.x, parts.y)
                n_bad = int(np.count_nonzero(bad))
                if n_bad == 0:
                    break
                parts.x[bad] = self.rng.uniform(0.0, dom.width, size=n_bad)
                parts.y[bad] = self.rng.uniform(0.0, dom.height, size=n_bad)
        return parts

    def _assign_cells(self) -> None:
        dom = self.config.domain
        self.particles.cell = dom.cell_index(
            self.particles.x, self.particles.y, self.particles.z
        )

    # -- stepping ------------------------------------------------------------

    def step(self, sample: bool = False) -> dict:
        """Advance one 3-D time step; returns a diagnostics dict."""
        cfg = self.config
        dom = cfg.domain
        parts = self.particles

        # 1) Collisionless motion, now including z.
        parts.x += parts.u
        parts.y += parts.v
        parts.z = dom.wrap_z(parts.z + parts.w)

        # 2) Boundaries: x-y walls/wedge/plunger/sink (shared code);
        #    injected particles get uniform span positions.
        n_before = parts.n
        parts, bstats = self.boundaries.apply_rebuilding(
            parts, self.reservoir, self.rng
        )
        if bstats.n_injected_upstream:
            fresh = slice(parts.n - bstats.n_injected_upstream, parts.n)
            parts.z[fresh] = self.rng.uniform(
                0.0, dom.depth, size=bstats.n_injected_upstream
            )

        # 3) Selection of collision partners in 3-D cells.
        parts.cell = dom.cell_index(parts.x, parts.y, parts.z)
        self.particles = parts
        sort_by_cell(parts, rng=self.rng, scale=cfg.sort_scale)
        pairs = even_odd_pairs(parts.cell)
        counts = cell_populations(parts.cell, dom.n_cells)
        selection = select_collisions(
            parts,
            pairs,
            cfg.freestream,
            cfg.model,
            counts,
            volume_fractions=self._vf3_flat,
            rng=self.rng,
        )

        # 4) Collision.
        collide_pairs(
            parts,
            pairs.first[selection.accept],
            pairs.second[selection.accept],
            rng=self.rng,
            internal_exchange_probability=(
                cfg.model.internal_exchange_probability
            ),
        )

        if cfg.reservoir_mix_rounds:
            self.reservoir.mix(self.rng, rounds=cfg.reservoir_mix_rounds)

        self.step_count += 1
        if sample:
            # Span-collapsed accumulation on the x-y grid.
            saved = parts.cell
            parts.cell = dom.collapse_to_xy(saved)
            self.sampler.accumulate(parts)
            parts.cell = saved

        return {
            "step": self.step_count,
            "n_flow": parts.n,
            "n_collisions": selection.n_collisions,
            "pairing_efficiency": pairing_efficiency(pairs),
        }

    def run(self, n_steps: int, sample: bool = False) -> dict:
        """Run ``n_steps`` steps; returns the final diagnostics."""
        if n_steps <= 0:
            raise ConfigurationError("n_steps must be positive")
        out = {}
        for _ in range(n_steps):
            out = self.step(sample=sample)
        return out

    # -- results ------------------------------------------------------------

    def density_ratio_field(self) -> np.ndarray:
        """Span-averaged density / freestream density, shape (nx, ny).

        The sampler counts particles per x-y column; dividing by the
        span depth converts to per-unit-volume density comparable with
        ``freestream.density``.
        """
        per_column = self.sampler.number_density()
        return per_column / self.config.domain.depth / self.config.freestream.density
