"""Unit tests for the CM sort, router and field primitives."""

import numpy as np
import pytest

from repro.cm.field import Field
from repro.cm.machine import CM2
from repro.cm.router import gather, permute, permute_many
from repro.cm.sort import apply_order, sort_by_key
from repro.cm.timing import CostLedger, CostModel
from repro.errors import MachineError


@pytest.fixture
def geom():
    return CM2(n_processors=4).geometry(16)


@pytest.fixture
def costed(geom):
    ledger = CostLedger()
    return geom, ledger, CostModel(geom, ledger)


class TestSort:
    def test_sorted_order(self, rng):
        keys = rng.integers(0, 50, size=200)
        res = sort_by_key(keys, key_bits=8)
        assert np.all(np.diff(keys[res.order]) >= 0)

    def test_stability(self):
        keys = np.array([2, 1, 2, 1])
        res = sort_by_key(keys, key_bits=2)
        # Equal keys keep original relative order.
        assert res.order.tolist() == [1, 3, 0, 2]

    def test_rank_is_inverse_of_order(self, rng):
        keys = rng.integers(0, 9, size=64)
        res = sort_by_key(keys, key_bits=4)
        assert np.array_equal(res.order[res.rank], np.arange(64))

    def test_offchip_measured(self, geom):
        # Reversing keys forces nearly everything across processors.
        keys = np.arange(16)[::-1].copy()
        res = sort_by_key(keys, geometry=geom, key_bits=5)
        assert res.offchip_fraction > 0.5

    def test_key_width_validated(self):
        with pytest.raises(MachineError):
            sort_by_key(np.array([300]), key_bits=8)

    def test_negative_keys_rejected(self):
        with pytest.raises(MachineError):
            sort_by_key(np.array([-1]), key_bits=8)

    def test_cost_charged_under_phase(self, costed):
        geom, ledger, cost = costed
        with ledger.phase("sort"):
            sort_by_key(np.arange(16)[::-1].copy(), cost=cost, key_bits=5)
        assert ledger.phase_total("sort") > 0
        assert ledger.category_total("route_off") > 0

    def test_apply_order(self):
        order = np.array([2, 0, 1])
        a, b = apply_order(order, np.array([10, 20, 30]), np.array([1, 2, 3]))
        assert a.tolist() == [30, 10, 20]
        assert b.tolist() == [3, 1, 2]


class TestRouter:
    def test_permute_roundtrip(self, rng):
        v = rng.random(16)
        dst = rng.permutation(16)
        out = permute(v, dst)
        assert np.allclose(out[dst], v)

    def test_permute_collision_rejected(self):
        with pytest.raises(MachineError):
            permute(np.arange(4), np.array([0, 0, 1, 2]))

    def test_permute_out_of_range(self):
        with pytest.raises(MachineError):
            permute(np.arange(4), np.array([0, 1, 2, 4]))

    def test_permute_many_consistency(self, geom, rng):
        cols = [rng.random(16), rng.integers(0, 9, size=16)]
        dst = rng.permutation(16)
        outs = permute_many(cols, dst, geom)
        for c, o in zip(cols, outs):
            assert np.array_equal(o[dst], c)

    def test_permute_many_length_mismatch(self, geom):
        with pytest.raises(MachineError):
            permute_many([np.arange(4), np.arange(5)], np.arange(4), geom)

    def test_gather_allows_duplicates(self):
        v = np.array([10.0, 20.0, 30.0])
        out = gather(v, np.array([0, 0, 2]))
        assert out.tolist() == [10.0, 10.0, 30.0]

    def test_gather_charges_double_payload(self, costed):
        geom, ledger, cost = costed
        with ledger.phase("collision"):
            gather(np.arange(16), np.arange(16)[::-1].copy(), cost=cost)
        one_way = ledger.phase_total("collision")
        ledger2 = CostLedger()
        cost2 = CostModel(geom, ledger2)
        with ledger2.phase("collision"):
            permute(np.arange(16), np.arange(16)[::-1].copy(), cost=cost2)
        assert one_way > ledger2.phase_total("collision")


class TestField:
    def test_arithmetic_and_cost(self, costed):
        geom, ledger, cost = costed
        a = Field(np.arange(16, dtype=np.int32), geom, cost)
        b = Field(np.ones(16, dtype=np.int32), geom, cost)
        with ledger.phase("motion"):
            c = a + b * 2
        assert c.data[3] == 5
        assert ledger.phase_total("motion") > 0

    def test_merge_semantics(self, geom):
        a = Field(np.zeros(16, dtype=np.int32), geom)
        out = a.merge(np.arange(16), np.arange(16) % 2 == 0)
        assert out.data[2] == 2 and out.data[3] == 0

    def test_shape_validation(self, geom):
        with pytest.raises(MachineError):
            Field(np.zeros(5, dtype=np.int32), geom)
        with pytest.raises(MachineError):
            Field(np.zeros((4, 4), dtype=np.int32), geom)

    def test_global_reductions(self, geom):
        f = Field(np.arange(16, dtype=np.int32), geom)
        assert f.global_sum() == 120
        assert f.global_max() == 15
        assert f.global_or() is True
        assert Field.zeros(geom).global_or() is False

    def test_comparisons_and_bitops(self, geom):
        f = Field(np.arange(16, dtype=np.int32), geom)
        assert (f < 8).data.sum() == 8
        assert ((f & 1).data == np.arange(16) % 2).all()
        assert ((f >> 1).data == np.arange(16) // 2).all()

    def test_from_scalar_and_len(self, geom):
        f = Field.from_scalar(7, geom)
        assert len(f) == 16 and int(f.data[0]) == 7
