"""Cursor-based tail-following of append-only JSONL streams.

The run artifacts (``events.jsonl``, ``worker.jsonl``, the service
journal) are all append-only JSONL files written by *other* processes,
flushed line by line.  Everything that wants to observe them live --
the service's long-poll and SSE routes, the orchestrator's fleet
scraper, ``repro watch`` -- shares the same three problems:

* **torn tails** -- a reader can catch the writer mid-``write``, so
  the final line may be half a record.  A complete record always ends
  in a newline; :class:`JsonlFollower` consumes only newline-terminated
  lines and leaves a torn tail unconsumed until its newline lands (the
  writer is still alive) or forever (the writer crashed -- a snapshot
  reader then drops it, exactly the service journal's torn-tail rule);
* **rotation** -- a file can be truncated or atomically replaced under
  the reader (journal repair rewrites ``service.jsonl`` in place); a
  shrink below the cursor resets the follower to the start;
* **resumable cursors** -- a cursor is a plain byte offset, valid
  across processes and HTTP round-trips, so a disconnected client
  resumes exactly where it stopped without replaying or losing
  records.

:class:`JobEventTail` composes two followers into the merged live view
of one job directory (``worker.jsonl`` + ``events.jsonl``) behind a
single opaque string cursor -- the payload of ``GET
/jobs/<id>/events`` and the ``id:`` field of ``GET /jobs/<id>/stream``.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional, Tuple, Union

from repro.errors import ServiceJournalError

PathLike = Union[str, pathlib.Path]


def snapshot_records(path: PathLike, strict: bool = True) -> List[dict]:
    """One-shot tolerant read of a JSONL file being appended to.

    A torn *final* line (no trailing newline, or unparseable -- the
    writer was mid-``write`` or crashed there) is silently dropped:
    the snapshot loses at most the record being written.  Garbage
    anywhere earlier is real corruption; with ``strict`` (default) it
    raises :class:`~repro.errors.ServiceJournalError` instead of
    silently skipping history, mirroring the service journal's rule.
    Returns ``[]`` for a missing file.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    blob = path.read_bytes()
    complete, torn = _split_complete(blob)
    records: List[dict] = []
    lines = complete.decode("utf-8", errors="replace").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1 and not torn:
                # The final *complete* line can still be the torn one
                # when the crash happened after the newline of the
                # previous record but mid-line here is impossible --
                # a flushed line is complete.  Treat a bad last line
                # as torn either way.
                break
            if strict:
                raise ServiceJournalError(
                    "stream is corrupt before the final record",
                    path=str(path),
                    line=i + 1,
                ) from exc
    return records


def _split_complete(blob: bytes) -> Tuple[bytes, bytes]:
    """Split a byte blob into (newline-terminated prefix, torn tail)."""
    cut = blob.rfind(b"\n") + 1
    return blob[:cut], blob[cut:]


class JsonlFollower:
    """Incremental cursor-based reader of one append-only JSONL file.

    ``poll()`` returns every complete record appended since the
    cursor and advances it; the cursor is a byte offset that can be
    persisted, shipped over HTTP, and handed to a fresh follower in
    another process.  Unparseable *complete* lines are skipped and
    counted in :attr:`dropped` rather than raised -- a live tail must
    keep following past one bad record (the strict snapshot readers
    are the place to fail loudly).
    """

    def __init__(self, path: PathLike, cursor: int = 0) -> None:
        self.path = pathlib.Path(path)
        self.cursor = max(0, int(cursor))
        #: Complete-but-unparseable lines skipped so far.
        self.dropped = 0
        #: Times the file shrank under the cursor (rotation/truncate).
        self.rotations = 0

    def poll(self) -> List[dict]:
        """New complete records since the cursor (advances it)."""
        return [rec for rec, _ in self.poll_records()]

    def poll_records(self) -> List[Tuple[dict, int]]:
        """Like :meth:`poll`, but each record pairs with the cursor
        *after* it -- the exact offset a fresh follower resumes from to
        see everything following that record.  This is what makes
        per-message SSE ids gapless: a client that received only part
        of a batch resumes at its last record, not the batch end.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.cursor:
            # Truncated or rotated under us: start over from the top.
            self.cursor = 0
            self.rotations += 1
        if size == self.cursor:
            return []
        base = self.cursor
        with open(self.path, "rb") as fh:
            fh.seek(base)
            blob = fh.read(size - base)
        complete, _torn = _split_complete(blob)
        self.cursor += len(complete)
        records: List[Tuple[dict, int]] = []
        start = 0
        while start < len(complete):
            nl = complete.index(b"\n", start)
            line = complete[start:nl]
            end_offset = base + nl + 1
            start = nl + 1
            if not line.strip():
                continue
            try:
                records.append((json.loads(line), end_offset))
            except json.JSONDecodeError:
                self.dropped += 1
        return records


class JobEventTail:
    """The merged live event view of one job directory.

    Follows ``worker.jsonl`` (heartbeats, attempt lifecycle) and
    ``events.jsonl`` (telemetry metric samples, checkpoints,
    recoveries) behind one opaque cursor string ``"<w>:<e>"``.  Span
    records are filtered out by default -- they are bulk trace data
    for :mod:`repro.telemetry.stitch`, not live status -- and every
    record is annotated with its source file (``src``).
    """

    #: Record kinds excluded from the live view by default.
    SKIP_KINDS = ("span",)

    def __init__(
        self,
        job_dir: PathLike,
        cursor: Optional[str] = None,
        skip_kinds: Tuple[str, ...] = SKIP_KINDS,
    ) -> None:
        self.job_dir = pathlib.Path(job_dir)
        w_off, e_off = self.decode_cursor(cursor)
        self._worker = JsonlFollower(
            self.job_dir / "worker.jsonl", cursor=w_off
        )
        self._events = JsonlFollower(
            self.job_dir / "events.jsonl", cursor=e_off
        )
        self.skip_kinds = tuple(skip_kinds)

    @staticmethod
    def decode_cursor(cursor: Optional[str]) -> Tuple[int, int]:
        """Parse an opaque ``"<w>:<e>"`` cursor (``None``/"" = start)."""
        if not cursor:
            return 0, 0
        try:
            w, e = str(cursor).split(":")
            return max(0, int(w)), max(0, int(e))
        except ValueError:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"malformed stream cursor {cursor!r}; expected "
                "'<int>:<int>' as returned by a previous poll"
            ) from None

    @property
    def cursor(self) -> str:
        """The current opaque cursor (ship it back to resume)."""
        return f"{self._worker.cursor}:{self._events.cursor}"

    def poll(self) -> List[dict]:
        """New records from both files, time-ordered and annotated.

        Each record carries its source file (``src``) and the
        composite ``cursor`` valid *after* it -- within a file records
        append in time order, so walking the merged sequence while
        advancing one file offset at a time yields a resumable cursor
        per record (the ``id:`` of the SSE route).
        """
        w_cur, e_cur = self._worker.cursor, self._events.cursor
        merged: List[Tuple[float, int, int, dict]] = []
        for src_id, src, follower in (
            (0, "worker", self._worker),
            (1, "telemetry", self._events),
        ):
            for rec, offset in follower.poll_records():
                if rec.get("kind") in self.skip_kinds:
                    continue
                rec["src"] = src
                merged.append(
                    (rec.get("time") or 0.0, src_id, offset, rec)
                )
        merged.sort(key=lambda t: t[0])
        out: List[dict] = []
        for _, src_id, offset, rec in merged:
            if src_id == 0:
                w_cur = offset
            else:
                e_cur = offset
            rec["cursor"] = f"{w_cur}:{e_cur}"
            out.append(rec)
        return out
