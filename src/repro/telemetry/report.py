"""Turn a run's JSONL event stream into a summary, or diff two runs.

``python -m repro.telemetry.report RUN_DIR`` renders the headline
numbers of a run (steps, us/particle, phase split vs the paper's
14/27/20/39, imbalance, audits, recoveries) from its ``events.jsonl``;
``--diff OTHER_DIR`` prints both runs side by side with relative
deltas -- the regression-triage view: did the refactor move the sort
fraction, did the new backend change the imbalance, did us/particle
regress.

The summary is pure stream processing (one pass over the JSONL), so it
works on live run directories and on streams truncated by a crash:
events are read through the tolerant snapshot reader
(:func:`repro.telemetry.stream.snapshot_records`), which drops a torn
final line -- reporting or diffing against a run that is *still being
appended to* (``repro watch`` next door, a live service job) sees a
consistent prefix instead of a ``JSONDecodeError``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Union

from repro.perf import PAPER_PHASES
from repro.telemetry.events import EventStream
from repro.telemetry.stream import snapshot_records

PathLike = Union[str, pathlib.Path]

#: The paper's target split, displayed next to the measured one.
PAPER_FRACTIONS = {
    "motion": 0.14, "sort": 0.27, "selection": 0.20, "collision": 0.39,
}


def summarize(run_dir: PathLike) -> dict:
    """One-pass summary of a run directory's ``events.jsonl``.

    Reads through the torn-tail-tolerant snapshot reader, so a live
    run directory (writer mid-``write``) summarizes cleanly; the at
    most one record being appended right now is simply not counted
    yet.
    """
    events = snapshot_records(
        pathlib.Path(run_dir) / EventStream.filename, strict=False
    )
    if not events:
        raise FileNotFoundError(
            f"no events.jsonl records under {run_dir} (was the run "
            "started with telemetry enabled?)"
        )
    summary: dict = {
        "run_dir": str(run_dir),
        "workers": None,
        "seed": None,
        # None = "step count never reported" (distinct from a genuine
        # zero-step run, which the metrics snapshot reports as 0).
        "steps": None,
        "last_step": None,
        "n_flow": None,
        "us_per_particle_mean": None,
        "fractions": None,
        "energy_drift": None,
        "load_imbalance_max": None,
        "sort_moved_fraction_mean": None,
        "sort_rebuilds": None,
        "spans": 0,
        "audits": 0,
        "audit_failures": 0,
        "recoveries": 0,
        "checkpoints": 0,
        "rebalances": 0,
        "rebalances_skipped": 0,
        "rebalance_columns_moved": 0,
        "mean_free_path_bands": None,
    }
    us_samples: List[float] = []
    imb_samples: List[float] = []
    moved_samples: List[float] = []
    for ev in events:
        kind = ev.get("kind")
        if kind == "run_start":
            summary["workers"] = ev.get("workers")
            summary["seed"] = ev.get("seed")
        elif kind == "metrics":
            summary["last_step"] = ev.get("step")
            summary["n_flow"] = ev.get("n_flow")
            summary["fractions"] = ev.get("fractions")
            if ev.get("us_per_particle") is not None:
                us_samples.append(float(ev["us_per_particle"]))
            if ev.get("energy_drift") is not None:
                summary["energy_drift"] = float(ev["energy_drift"])
            if ev.get("load_imbalance") is not None:
                imb_samples.append(float(ev["load_imbalance"]))
            if ev.get("sort_moved_fraction") is not None:
                moved_samples.append(float(ev["sort_moved_fraction"]))
            if ev.get("sort_rebuilds") is not None:
                summary["sort_rebuilds"] = int(ev["sort_rebuilds"])
        elif kind == "span":
            summary["spans"] += 1
        elif kind == "audit":
            summary["audits"] += 1
            if not ev.get("ok", True):
                summary["audit_failures"] += 1
        elif kind == "recovery":
            summary["recoveries"] += 1
        elif kind == "checkpoint":
            summary["checkpoints"] += 1
        elif kind == "rebalance":
            if ev.get("executed"):
                summary["rebalances"] += 1
                summary["rebalance_columns_moved"] += int(
                    ev.get("columns_moved", 0)
                )
            else:
                summary["rebalances_skipped"] += 1
        elif kind == "observables":
            summary["mean_free_path_bands"] = ev.get("mean_free_path_bands")
        elif kind == "run_end":
            snap = ev.get("snapshot", {})
            metrics = snap.get("metrics", {})
            steps = metrics.get("repro_steps_total", {})
            val = steps.get("value")
            if val is not None:
                summary["steps"] = int(val)
    # Fall back to the last metrics step only when the count was never
    # reported -- a reported 0 (zero-step run) stands as-is.
    if summary["steps"] is None and summary["last_step"] is not None:
        summary["steps"] = int(summary["last_step"])
    if us_samples:
        summary["us_per_particle_mean"] = sum(us_samples) / len(us_samples)
    if imb_samples:
        summary["load_imbalance_max"] = max(imb_samples)
    if moved_samples:
        summary["sort_moved_fraction_mean"] = (
            sum(moved_samples) / len(moved_samples)
        )
    return summary


def _fmt(value, spec: str = "") -> str:
    if value is None:
        return "-"
    return format(value, spec) if spec else str(value)


def _split(fractions: Optional[Dict[str, float]]) -> str:
    if not fractions:
        return "-"
    return "/".join(
        f"{100 * fractions.get(p, 0.0):.0f}" for p in PAPER_PHASES
    )


def render(summary: dict) -> str:
    """Human-readable table of one run summary."""
    rows = [
        ("run", summary["run_dir"]),
        ("workers", _fmt(summary["workers"])),
        ("seed", _fmt(summary["seed"])),
        ("steps", _fmt(summary["steps"])),
        ("flow particles", _fmt(summary["n_flow"])),
        ("us/particle (mean)", _fmt(summary["us_per_particle_mean"], ".3f")),
        (
            "phase split",
            f"{_split(summary['fractions'])} (paper {_split(PAPER_FRACTIONS)})",
        ),
        ("energy drift", _fmt(summary["energy_drift"], ".2e")),
        ("load imbalance (max)", _fmt(summary["load_imbalance_max"], ".3f")),
        (
            "sort moved fraction",
            _fmt(summary["sort_moved_fraction_mean"], ".3f"),
        ),
        ("sort rebuilds", _fmt(summary["sort_rebuilds"])),
        ("spans", _fmt(summary["spans"])),
        ("audits (failures)", f"{summary['audits']} ({summary['audit_failures']})"),
        ("recoveries", _fmt(summary["recoveries"])),
        ("checkpoints", _fmt(summary["checkpoints"])),
        (
            "rebalances (skipped)",
            f"{summary['rebalances']} ({summary['rebalances_skipped']})",
        ),
        ("columns rebalanced", _fmt(summary["rebalance_columns_moved"])),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}} : {value}" for label, value in rows)


def render_diff(a: dict, b: dict) -> str:
    """Side-by-side comparison of two run summaries with deltas."""
    def delta(x, y):
        if x is None or y is None:
            return "-"
        if x == 0:
            # A relative delta from a clean baseline is undefined, but
            # the regression is real -- report the absolute change
            # (0 recoveries -> 3 must not render as "-").
            return "-" if y == 0 else f"{y - x:+g}"
        return f"{100.0 * (y - x) / abs(x):+.1f}%"

    rows = [
        ("run", a["run_dir"], b["run_dir"], ""),
        ("workers", _fmt(a["workers"]), _fmt(b["workers"]), ""),
        ("steps", _fmt(a["steps"]), _fmt(b["steps"]), ""),
        (
            "us/particle",
            _fmt(a["us_per_particle_mean"], ".3f"),
            _fmt(b["us_per_particle_mean"], ".3f"),
            delta(a["us_per_particle_mean"], b["us_per_particle_mean"]),
        ),
        ("phase split", _split(a["fractions"]), _split(b["fractions"]), ""),
        (
            "imbalance (max)",
            _fmt(a["load_imbalance_max"], ".3f"),
            _fmt(b["load_imbalance_max"], ".3f"),
            delta(a["load_imbalance_max"], b["load_imbalance_max"]),
        ),
        (
            "energy drift",
            _fmt(a["energy_drift"], ".2e"),
            _fmt(b["energy_drift"], ".2e"),
            "",
        ),
        (
            "recoveries",
            _fmt(a["recoveries"]),
            _fmt(b["recoveries"]),
            delta(a["recoveries"], b["recoveries"]),
        ),
        (
            "rebalances",
            _fmt(a.get("rebalances", 0)),
            _fmt(b.get("rebalances", 0)),
            delta(a.get("rebalances", 0), b.get("rebalances", 0)),
        ),
    ]
    w0 = max(len(r[0]) for r in rows)
    w1 = max(len(r[1]) for r in rows)
    w2 = max(len(r[2]) for r in rows)
    return "\n".join(
        f"{r[0]:<{w0}} : {r[1]:<{w1}}  {r[2]:<{w2}}  {r[3]}" for r in rows
    )


def render_service(summary: dict) -> str:
    """Human-readable table of a service journal summary."""
    by_state = summary.get("by_state") or {}
    states = (
        ", ".join(f"{s}={n}" for s, n in sorted(by_state.items()))
        or "-"
    )
    rows = [
        ("jobs", _fmt(summary["jobs"])),
        ("by state", states),
        ("submissions", _fmt(summary["submissions"])),
        ("retries", _fmt(summary["retries"])),
        ("cache hits", _fmt(summary["cache_hits"])),
        ("backpressure rejections", _fmt(summary["backpressure"])),
        ("drained", _fmt(summary["drains"])),
        ("requeues", _fmt(summary["requeues"])),
        ("torn journal tail", str(summary["torn_tail"]).lower()),
    ]
    width = max(len(label) for label, _ in rows)
    body = "\n".join(f"{label:<{width}} : {v}" for label, v in rows)
    return f"service journal\n{body}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: summarize or diff run telemetry directories."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize (or diff) run telemetry event streams",
    )
    parser.add_argument("run_dir", help="run directory with events.jsonl")
    parser.add_argument(
        "--diff", metavar="OTHER", default=None,
        help="second run directory to compare against",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    args = parser.parse_args(argv)

    from repro.service.store import summarize_journal

    service = summarize_journal(args.run_dir)
    try:
        summary = summarize(args.run_dir)
    except FileNotFoundError as exc:
        if service is not None:
            # A service data directory: the journal is the summary.
            if args.json:
                print(json.dumps({"service": service}, indent=2))
            else:
                print(render_service(service))
            return 0
        print(str(exc), file=sys.stderr)
        return 2
    if service is not None:
        summary["service"] = service
    try:
        if args.diff:
            other = summarize(args.diff)
            if args.json:
                print(json.dumps({"a": summary, "b": other}, indent=2))
            else:
                print(render_diff(summary, other))
        elif args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(render(summary))
            if service is not None:
                print()
                print(render_service(service))
    except BrokenPipeError:  # piped into head/less and cut short
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
