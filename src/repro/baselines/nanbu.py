"""The Nanbu / Ploss collision scheme (the other comparator).

"Nanbu introduces the idea of a probability of collision which he
applies unconditionally to decide on a collision and then on a
conditional basis to select a collision partner.  This approach has a
better theoretical foundation however it has the drawback of being an
O(N^2) calculation.  Ploss shows how Nanbu's scheme can be implemented
as O(N) and vectorized thus yielding performance comparable to Bird's
scheme.  However, both Ploss's and Nanbu's scheme conserve only the mean
energy and momentum of a cell."

Implementation (Ploss's O(N) form): every particle *independently*
decides with probability ``P = n sigma g dt`` whether it collides this
step; if so it picks a uniform partner in its cell and updates **only
its own** velocity to the post-collision value -- the partner is left
untouched.  Summed over a cell the expected momentum/energy change is
zero, but each individual collision violates conservation: exactly the
defect the paper cites, measurable as per-step conservation noise that
the ablation bench reports next to the exactly conserving schemes.
"""

from __future__ import annotations

import numpy as np

from repro.core.particles import ParticleArrays
from repro.core.permutation import apply_permutation
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream
from repro.rng import random_signs


class NanbuPloss:
    """Nanbu's scheme in Ploss's O(N) vectorized form."""

    name = "nanbu-ploss"

    def __init__(self, freestream: Freestream) -> None:
        if freestream.is_near_continuum:
            raise ConfigurationError(
                "Nanbu's probability needs a finite mean free path"
            )
        self.freestream = freestream

    def collide_step(
        self, particles: ParticleArrays, n_cells: int, rng: np.random.Generator
    ) -> int:
        """One fully vectorized one-sided collision round."""
        n = particles.n
        if n < 2:
            return 0
        cell = particles.cell
        counts = np.bincount(cell, minlength=n_cells)

        # Per-particle collision probability (Maxwell molecules: density
        # dependence only), eq. (8) anchored at freestream conditions.
        p = self.freestream.collision_probability * (
            counts[cell] / self.freestream.density
        )
        collide = rng.random(n) < np.minimum(p, 1.0)

        # Partner choice: a uniform member of the same cell.  Vectorized
        # by sorting particles by cell and indexing random offsets into
        # each cell's contiguous run.
        order = np.argsort(cell, kind="stable")
        start_of_cell = np.zeros(n_cells, dtype=np.int64)
        np.cumsum(counts[:-1], out=start_of_cell[1:])
        offsets = (rng.random(n) * counts[cell]).astype(np.int64)
        partner = order[start_of_cell[cell] + np.minimum(offsets, counts[cell] - 1)]
        self_partner = partner == np.arange(n)
        collide &= ~self_partner & (counts[cell] >= 2)

        idx = np.flatnonzero(collide)
        if idx.size == 0:
            return 0
        pa = partner[idx]

        # Post-collision state for the deciding particle ONLY (the
        # one-sided update that breaks per-collision conservation).
        k = 3 + particles.rotational_dof
        mean = np.empty((idx.size, k))
        half = np.empty((idx.size, k))
        for j, (col_a, col_b) in enumerate(
            (
                (particles.u[idx], particles.u[pa]),
                (particles.v[idx], particles.v[pa]),
                (particles.w[idx], particles.w[pa]),
            )
        ):
            mean[:, j] = 0.5 * (col_a + col_b)
            half[:, j] = 0.5 * (col_a - col_b)
        mean[:, 3:] = 0.5 * (particles.rot[idx] + particles.rot[pa])
        half[:, 3:] = 0.5 * (particles.rot[idx] - particles.rot[pa])

        h_new = apply_permutation(half, particles.perm[idx])
        h_new *= random_signs(rng, (idx.size, k))

        particles.u[idx] = mean[:, 0] + h_new[:, 0]
        particles.v[idx] = mean[:, 1] + h_new[:, 1]
        particles.w[idx] = mean[:, 2] + h_new[:, 2]
        particles.rot[idx] = mean[:, 3:] + h_new[:, 3:]

        # Refresh permutations of the updated particles.
        js = rng.integers(0, k, size=idx.size)
        tmp = particles.perm[idx, js].copy()
        particles.perm[idx, js] = particles.perm[idx, 0]
        particles.perm[idx, 0] = tmp
        return int(idx.size)
