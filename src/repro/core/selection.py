"""The McDonald-Baganoff collision selection rule (sub-step 3, part 4).

Unlike Bird's per-cell time counter, "a probability of collision is
computed for each pair of collision candidates and collisions are
carried out in accordance with this probability.  The decision to
perform a collision is applied on the individual candidate pairs and not
on the cell as a whole.  Consequently ... the selection rule can be
parallelized at a particle level" while conserving energy and momentum
per collision.

Equations (3)-(8) of the paper:

    t_c      = 1 / (n sigma c_bar)                       (3)
    P_c      = dt / t_c          (valid for dt << t_c)    (4)
    P_c      = n sigma g dt                               (5)
    P_c ~    n g^(1 - 4/alpha)                            (6)
    P_c/P_co = (n/n_oo) (g/g_oo)^(1-4/alpha)              (7)
    P_c/P_co = n/n_oo            (Maxwell, alpha = 4)     (8)

The freestream anchor ``P_co`` comes from
:attr:`repro.physics.freestream.Freestream.collision_probability`.
Near-continuum runs (lambda = 0) saturate every candidate at P = 1:
"all collision candidates must collide and the number of collisions in a
cell is just equal to half the number of particles in the cell."

Cut cells: the local number density divides by the cell's **fractional
open volume** ("where cells are divided by the wedge special allowance
must be made for the fractional cell volume when employing the selection
rule").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.pairing import CandidatePairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel

#: Cells whose open fraction falls below this are treated as fully
#: blocked for density purposes (they should hold no particles; the
#: floor avoids division blow-ups on stray reflections mid-resolution).
MIN_VOLUME_FRACTION = 1.0 / 64.0


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the selection rule for one step.

    Attributes
    ----------
    accept:
        Boolean per *pair* (aligned with the pairing arrays): True for
        pairs that will actually collide.
    probability:
        The computed per-pair probability (0 for non-candidates), before
        the random draw -- kept for diagnostics and tests.
    relative_speed:
        Per-pair translational relative speed g (0 for non-candidates).
    """

    accept: np.ndarray
    probability: np.ndarray
    relative_speed: np.ndarray

    @property
    def n_collisions(self) -> int:
        return int(np.count_nonzero(self.accept))


def pair_relative_speed(
    particles: ParticleArrays, pairs: CandidatePairs
) -> np.ndarray:
    """Translational relative speed |c1 - c2| of every formed pair."""
    if pairs.adjacent:
        # Pair i occupies rows (2i, 2i+1): strided views replace the
        # six scattered gathers of the generic path.
        m = 2 * pairs.n_pairs
        du = particles.u[0:m:2] - particles.u[1:m:2]
        dv = particles.v[0:m:2] - particles.v[1:m:2]
        dw = particles.w[0:m:2] - particles.w[1:m:2]
    else:
        a, b = pairs.first, pairs.second
        du = particles.u[a] - particles.u[b]
        dv = particles.v[a] - particles.v[b]
        dw = particles.w[a] - particles.w[b]
    du *= du
    dv *= dv
    dw *= dw
    du += dv
    du += dw
    return np.sqrt(du, out=du)


def collision_probabilities(
    particles: ParticleArrays,
    pairs: CandidatePairs,
    freestream: Freestream,
    model: MolecularModel,
    cell_counts: np.ndarray,
    volume_fractions: Optional[np.ndarray] = None,
) -> tuple:
    """Per-pair collision probability via eq. (7)/(8).

    Parameters
    ----------
    cell_counts:
        Particles per cell (length n_cells) for *this* population.
    volume_fractions:
        Open area fraction per cell (flattened, length n_cells);
        ``None`` means all cells fully open.

    Returns ``(probability, relative_speed)`` arrays over pairs.
    """
    n_pairs = pairs.n_pairs
    if n_pairs == 0:
        return np.zeros(0), np.zeros(0)

    # Compute over ALL formed pairs, then zero the non-candidates at
    # the end: full-array arithmetic beats boolean-masked gathers on
    # every step (candidates are the vast majority after the sort).
    cand = pairs.same_cell
    if pairs.adjacent:
        cells = particles.cell[0 : 2 * n_pairs : 2]
    else:
        cells = particles.cell[pairs.first]

    g = pair_relative_speed(particles, pairs)

    if freestream.is_near_continuum:
        # The lambda -> 0 validation limit: every candidate collides.
        g *= cand
        return cand.astype(np.float64), g

    # Per-cell density table first (n_cells entries), then one gather
    # per pair -- not a division per pair.
    counts = np.asarray(cell_counts, dtype=np.float64)
    if volume_fractions is not None:
        vf = np.maximum(np.asarray(volume_fractions, dtype=np.float64),
                        MIN_VOLUME_FRACTION)
        density_table = counts / vf
    else:
        density_table = counts
    prob = np.take(density_table, cells)
    prob *= freestream.collision_probability / freestream.density
    expo = model.speed_exponent
    if expo != 0.0:
        g_ref = np.sqrt(2.0) * freestream.mean_speed  # mean relative speed
        prob *= model.speed_factor(g, g_ref)
    np.minimum(prob, 1.0, out=prob)
    prob *= cand
    g *= cand
    return prob, g


def select_collisions(
    particles: ParticleArrays,
    pairs: CandidatePairs,
    freestream: Freestream,
    model: MolecularModel,
    cell_counts: np.ndarray,
    volume_fractions: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    draws: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Apply the selection rule: probability, then an acceptance draw.

    ``draws`` lets the CM engine supply its own uniform numbers (from
    the quick-and-dirty bit stream); otherwise ``rng`` provides them.
    """
    prob, g = collision_probabilities(
        particles, pairs, freestream, model, cell_counts, volume_fractions
    )
    if draws is None:
        if rng is None:
            raise ConfigurationError("need rng or draws")
        draws = rng.random(pairs.n_pairs)
    else:
        draws = np.asarray(draws, dtype=np.float64)
        if draws.shape != (pairs.n_pairs,):
            raise ConfigurationError("draws must have one entry per pair")
    accept = draws < prob
    return SelectionResult(accept=accept, probability=prob, relative_speed=g)
