"""Exporters: Prometheus snapshot files and a stdlib HTTP endpoint.

Two ways out for the metrics registry:

* :func:`write_prometheus_snapshot` -- the text exposition written to a
  file at a cadence (``metrics.prom`` in the run directory), the
  node-exporter "textfile collector" pattern: a scraper reads the file,
  the simulation never blocks on the network.
* :class:`MetricsServer` -- an optional live ``/metrics`` endpoint on
  ``http.server`` (no third-party dependency), serving the registry
  and a JSON snapshot at ``/snapshot.json``; enabled by
  ``wedge --telemetry-port``.  The handler thread only *reads* the
  registry (plain Python floats under the GIL), so no locking is
  needed for scrape-consistency a few steps stale.
"""

from __future__ import annotations

import json
import pathlib
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from repro.telemetry.metrics import MetricsRegistry

PathLike = Union[str, pathlib.Path]


def write_prometheus_snapshot(
    registry: MetricsRegistry, path: PathLike
) -> pathlib.Path:
    """Write the registry's text exposition atomically to ``path``."""
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(registry.to_prometheus(), encoding="utf-8")
    tmp.replace(path)
    return path


class MetricsServer:
    """Background HTTP server exposing the live metrics registry.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as :attr:`port` after construction.  The server runs on
    a daemon thread and is stopped by :meth:`close` (idempotent).
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0) -> None:
        self.registry = registry

        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                if self.path.rstrip("/") in ("", "/metrics".rstrip("/")):
                    body = server.registry.to_prometheus().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path == "/snapshot.json":
                    body = json.dumps(server.registry.snapshot()).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                """Silence per-request stderr logging."""

        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    def close(self) -> None:
        """Shut the HTTP server down and join its thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


def ensure_server(
    registry: MetricsRegistry, port: Optional[int]
) -> Optional[MetricsServer]:
    """Start a :class:`MetricsServer` when a port is configured."""
    if port is None:
        return None
    return MetricsServer(registry, port=port)
