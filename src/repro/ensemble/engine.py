"""The replica-batched ensemble engine.

DSMC answers are noisy: one run yields a point estimate with no error
bar.  The classical remedy -- run R independent seeds and average --
multiplies wall-clock by R when executed sequentially, yet at the
30k-particle scales where ensemble statistics matter most, each solo
step is dominated by per-kernel dispatch overhead, not arithmetic.
This engine therefore steps all R replicas as **one wide population**:
every hot kernel (motion, boundary scans, the counting sort, pairing,
selection, collision) runs once over ``sum(N_r)`` rows instead of R
times over ``N_r`` rows.

**Layout.**  Replica-packed rows, physically blocked by replica at all
times: replica ``r`` owns the contiguous row range
``starts[r]:starts[r+1]``.  The per-step sort key is the composite
``block * n_cells + cell`` (:func:`repro.core.sortstep.blocked_cell_key`)
-- replica above cell in sort-key significance -- so a stable sort can
never move a particle across its block and pairing never straddles
replicas.  Block *position* (not replica id) keeps the key dense, so
NumPy's 16-bit radix path still applies up to
``R * n_cells <= 65536`` keys.

**Determinism contract.**  All randomness comes from counter-keyed
Philox streams ``shard_stream(seed, 0, step, replica=rid)`` -- a pure
function of the key, never advanced across steps.  Within a step every
replica's draws happen in a fixed order (boundary deposits/refills,
pairing offsets, acceptance, collision signs, transpositions,
reservoir mix) from its own stream, and all batched arithmetic is
elementwise or block-local, so replica ``r`` of a batched run is
**bitwise identical** to a solo engine run (``R = 1``) keyed for
``r`` -- asserted by :func:`verify_replica_equality` and pinned in CI.

Engine restrictions (enforced at construction): specular walls only
(the other wall models draw per-crossing RNG inside full-population
kernels, which would entangle replicas) and
``internal_exchange_probability == 1.0`` (the relaxation knob draws
inside the collision kernel in non-blocked order).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import motion
from repro.core.boundary import (
    MAX_REFLECTION_PASSES,
    BoundaryStats,
    WindTunnelBoundaries,
)
from repro.core.cells import assign_cells
from repro.core.collision import collide_rows_with_velocities
from repro.core.pairing import reflection_pairs
from repro.core.particles import COLUMN_NAMES, ParticleArrays
from repro.core.reservoir import Reservoir
from repro.core.sampling import (
    SAMPLER_FIELDS,
    EnsembleSampler,
    EnsembleStatistic,
    ensemble_statistic,
)
from repro.core.selection import density_lookup_table
from repro.core.simulation import SimulationConfig, seed_flow_particles
from repro.core.sortstep import blocked_cell_key, counting_sort_order
from repro.errors import ConfigurationError, ValidationError
from repro.geometry.wedge import Wedge
from repro.perf import PerfLedger
from repro.rng import random_signs, shard_stream


@dataclass(frozen=True)
class EnsembleStepDiagnostics:
    """Per-step observability for one ensemble step.

    Per-replica tuples are ordered like ``replica_ids``; aggregate
    values sum over replicas.
    """

    step: int
    n_flow: Tuple[int, ...]
    n_reservoir: Tuple[int, ...]
    n_candidates: int
    n_collisions: Tuple[int, ...]
    mean_collision_probability: float
    boundary: BoundaryStats
    total_energy: float

    @property
    def n_flow_total(self) -> int:
        return int(sum(self.n_flow))

    @property
    def n_collisions_total(self) -> int:
        return int(sum(self.n_collisions))


class EnsembleEngine:
    """Step R replicas of one configuration as a single wide state.

    Parameters
    ----------
    config:
        The shared :class:`repro.core.simulation.SimulationConfig`.
        ``config.seed`` must be stateless (int / SeedSequence / None):
        every stream is re-derived per ``(seed, replica, step)`` key.
    n_replicas:
        Ensemble width R (replica ids ``0..R-1``).
    replica_ids:
        Explicit replica ids instead of ``range(R)`` -- the equality
        checker builds solo engines as ``replica_ids=[r]``.
    metrics:
        Optional :class:`repro.telemetry.metrics.MetricsRegistry`;
        each step publishes per-replica and aggregate gauges.
    """

    def __init__(
        self,
        config: SimulationConfig,
        n_replicas: Optional[int] = None,
        replica_ids: Optional[Sequence[int]] = None,
        metrics=None,
    ) -> None:
        if replica_ids is None:
            if n_replicas is None:
                raise ConfigurationError(
                    "EnsembleEngine needs n_replicas or replica_ids"
                )
            replica_ids = tuple(range(int(n_replicas)))
        else:
            replica_ids = tuple(int(r) for r in replica_ids)
            if n_replicas is not None and int(n_replicas) != len(replica_ids):
                raise ConfigurationError(
                    "n_replicas disagrees with len(replica_ids)"
                )
        self._init_static(config, replica_ids, metrics)

        # Seed each replica from its own step-0 keyed stream: initial
        # flow, then the reservoir deposit -- the same draw order a solo
        # engine uses, which is what makes restored/solo/batched
        # populations interchangeable.
        blocks: List[ParticleArrays] = []
        self.reservoirs = []
        for rid in self.replica_ids:
            rng = shard_stream(config.seed, 0, 0, replica=rid)
            parts_r = seed_flow_particles(config, rng, self._vf_flat)
            res = Reservoir(
                config.freestream,
                rotational_dof=config.model.rotational_dof,
            )
            res.deposit(
                rng, int(round(config.reservoir_fraction * parts_r.n))
            )
            res.particles.enable_scratch()
            blocks.append(parts_r)
            self.reservoirs.append(res)
        parts = (
            blocks[0]
            if len(blocks) == 1
            else functools.reduce(ParticleArrays.concatenate, blocks)
        )
        self.starts = np.zeros(self.n_replicas + 1, dtype=np.int64)
        np.cumsum([b.n for b in blocks], out=self.starts[1:])
        parts.enable_scratch()
        assign_cells(parts, config.domain)
        self.particles = parts
        self.sampler = EnsembleSampler(
            config.domain, self.n_replicas, self.volume_fractions
        )
        if isinstance(config.wedge, Wedge):
            from repro.core.surface import SurfaceSampler

            self.surfaces = [
                SurfaceSampler(config.wedge) for _ in self.replica_ids
            ]
        else:
            self.surfaces = None
        self.step_count = 0

    @classmethod
    def _restore_shell(
        cls, config: SimulationConfig, replica_ids: Sequence[int]
    ) -> "EnsembleEngine":
        """Build an engine without seeding (checkpoint restore path).

        The caller (:func:`repro.io.snapshots.load_ensemble`) fills in
        the particle blocks, reservoirs, sampler and surface
        accumulators, ``starts`` and ``step_count`` from the archive;
        because every stream is a pure function of
        ``(seed, replica, step)``, no RNG state needs restoring and
        continuation is bitwise.
        """
        eng = cls.__new__(cls)
        eng._init_static(
            config, tuple(int(r) for r in replica_ids), None
        )
        return eng

    def _init_static(self, config, replica_ids, metrics) -> None:
        """Validate the configuration and build the stateless pieces."""
        if not replica_ids:
            raise ConfigurationError("ensemble needs at least one replica")
        if len(set(replica_ids)) != len(replica_ids):
            raise ConfigurationError("replica ids must be distinct")
        if any(r < 0 for r in replica_ids):
            raise ConfigurationError("replica ids must be non-negative")
        if isinstance(config.seed, np.random.Generator):
            raise ConfigurationError(
                "ensemble runs need a stateless seed (int or SeedSequence); "
                "a live Generator cannot key per-replica streams"
            )
        if config.wall_model != "specular":
            raise ConfigurationError(
                "the ensemble engine supports specular walls only "
                f"(got {config.wall_model!r}): other wall models draw "
                "per-crossing RNG that would entangle replicas"
            )
        if config.model.internal_exchange_probability != 1.0:
            raise ConfigurationError(
                "the ensemble engine requires "
                "internal_exchange_probability == 1.0 (the relaxation "
                "knob draws RNG inside the collision kernel in "
                "non-replica-blocked order)"
            )
        self.config = config
        self.replica_ids = tuple(replica_ids)
        self.n_replicas = len(self.replica_ids)
        self.metrics = metrics
        if config.wedge is not None:
            self.volume_fractions = config.wedge.open_volume_fractions(
                config.domain
            )
        else:
            self.volume_fractions = np.ones(config.domain.shape)
        self._vf_flat = self.volume_fractions.reshape(-1)
        #: Volume fractions tiled per block: the composite density
        #: table's divisor (replica blocks share the geometry).
        self._vf_tiled = np.tile(self._vf_flat, self.n_replicas)
        self.boundaries = WindTunnelBoundaries(
            domain=config.domain,
            freestream=config.freestream,
            wedge=config.wedge,
            plunger_trigger=config.plunger_trigger,
            wall_model=config.wall_model,
            accommodation=config.accommodation,
        )
        self.perf = PerfLedger()

    # -- stepping ---------------------------------------------------------

    def step(self, sample: bool = False) -> EnsembleStepDiagnostics:
        """Advance every replica by one time step."""
        cfg = self.config
        parts = self.particles
        n_cells = cfg.domain.n_cells
        n_rep = self.n_replicas
        perf = self.perf
        step_id = self.step_count + 1
        streams = [
            shard_stream(cfg.seed, 0, step_id, replica=rid)
            for rid in self.replica_ids
        ]

        # 1+2) Collisionless motion, then the replica-aware boundary
        #    phase (may rebuild the blocked population).
        with perf.phase("motion"):
            motion.advance(parts)
            bstats = self._apply_boundaries(streams, sample)

        # 3a) Cell indexing + the blocked counting sort: one stable
        #    sort of the composite key physically re-blocks the whole
        #    ensemble, and one bincount yields all R histograms.
        with perf.phase("sort"):
            assign_cells(parts, cfg.domain)
            key = parts.scratch.array("ens_key", parts.n, dtype=np.int64)
            blocked_cell_key(parts.cell, self.starts, n_cells, out=key)
            counts = np.bincount(key, minlength=n_rep * n_cells)
            order = counting_sort_order(
                key,
                shuffle=False,
                scratch=parts.scratch,
                max_key=n_rep * n_cells - 1,
            )
            parts.reorder_inplace(order)
        offsets = np.cumsum(counts) - counts

        # 3b) Reflection pairing with externally packed per-replica
        #    offset draws (one bounded draw per composite cell, from
        #    each replica's own stream -- exactly the solo consumption).
        with perf.phase("selection"):
            s = parts.scratch.array(
                "ens_refl_s", n_rep * n_cells, dtype=np.int64
            )
            hi = parts.scratch.array(
                "ens_refl_hi", n_rep * n_cells, dtype=np.int64
            )
            np.maximum(counts, 1, out=hi)
            for r, st in enumerate(streams):
                blk = slice(r * n_cells, (r + 1) * n_cells)
                s[blk] = st.integers(0, hi[blk])
            rpairs = reflection_pairs(
                None, counts, offsets, s=s, scratch=parts.scratch
            )
            n_pairs = rpairs.n_pairs

            # Pair index ranges per replica (pairing is block-local, so
            # pairs inherit the blocked layout).
            pair_starts = np.zeros(n_rep + 1, dtype=np.int64)
            np.cumsum(
                (counts >> 1).reshape(n_rep, n_cells).sum(axis=1),
                out=pair_starts[1:],
            )

            # Selection rule over the composite density table.
            def buf(name, dtype=np.float64, n=n_pairs):
                return parts.scratch.array(name, n, dtype=dtype)

            needs_speed = (
                not cfg.freestream.is_near_continuum
                and cfg.model.speed_exponent != 0.0
            )
            if needs_speed:
                u0, u1 = buf("ens_u0"), buf("ens_u1")
                v0, v1 = buf("ens_v0"), buf("ens_v1")
                w0, w1 = buf("ens_w0"), buf("ens_w1")
                np.take(parts.u, rpairs.first, out=u0, mode="clip")
                np.take(parts.u, rpairs.second, out=u1, mode="clip")
                np.take(parts.v, rpairs.first, out=v0, mode="clip")
                np.take(parts.v, rpairs.second, out=v1, mode="clip")
                np.take(parts.w, rpairs.first, out=w0, mode="clip")
                np.take(parts.w, rpairs.second, out=w1, mode="clip")

            prob = buf("ens_prob")
            if cfg.freestream.is_near_continuum:
                prob[:n_pairs] = 1.0
            else:
                table = density_lookup_table(counts, self._vf_tiled)
                np.take(table, rpairs.cell, out=prob, mode="clip")
                prob *= (
                    cfg.freestream.collision_probability
                    / cfg.freestream.density
                )
                if needs_speed:
                    du, dv, dw = buf("ens_du"), buf("ens_dv"), buf("ens_dw")
                    np.subtract(u0, u1, out=du)
                    np.subtract(v0, v1, out=dv)
                    np.subtract(w0, w1, out=dw)
                    du *= du
                    dv *= dv
                    dw *= dw
                    du += dv
                    du += dw
                    g = np.sqrt(du, out=du)
                    g_ref = np.sqrt(2.0) * cfg.freestream.mean_speed
                    prob *= cfg.model.speed_factor(g, g_ref)
                np.minimum(prob, 1.0, out=prob)

            # Acceptance draws, packed contiguously per replica block.
            draws = buf("ens_draws")
            for r, st in enumerate(streams):
                p0, p1 = int(pair_starts[r]), int(pair_starts[r + 1])
                if p1 > p0:
                    st.random(out=draws[p0:p1])
            accept = buf("ens_accept", dtype=bool)
            np.less(draws, prob, out=accept)
            probability_sum = float(prob.sum())
            accepted = np.flatnonzero(accept)
            n_acc = accepted.shape[0]
            # Accepted pair counts per replica: accepted pair indices
            # are ascending, so block boundaries are a searchsorted.
            acc_edges = np.searchsorted(accepted, pair_starts)

        # 4) Collision of the accepted pairs: signs and transpositions
        #    are drawn per replica and packed so one kernel call
        #    reproduces each replica's solo draws exactly (the packed
        #    transpositions keep the kernel's first-partners-then-
        #    second-partners split).
        with perf.phase("collision"):
            a_rows = buf("ens_arows", dtype=np.intp, n=n_acc)
            b_rows = buf("ens_brows", dtype=np.intp, n=n_acc)
            np.take(rpairs.first, accepted, out=a_rows, mode="clip")
            np.take(rpairs.second, accepted, out=b_rows, mode="clip")
            au0, au1 = buf("ens_au0", n=n_acc), buf("ens_au1", n=n_acc)
            av0, av1 = buf("ens_av0", n=n_acc), buf("ens_av1", n=n_acc)
            aw0, aw1 = buf("ens_aw0", n=n_acc), buf("ens_aw1", n=n_acc)
            if needs_speed:
                np.take(u0, accepted, out=au0, mode="clip")
                np.take(u1, accepted, out=au1, mode="clip")
                np.take(v0, accepted, out=av0, mode="clip")
                np.take(v1, accepted, out=av1, mode="clip")
                np.take(w0, accepted, out=aw0, mode="clip")
                np.take(w1, accepted, out=aw1, mode="clip")
            else:
                np.take(parts.u, a_rows, out=au0, mode="clip")
                np.take(parts.u, b_rows, out=au1, mode="clip")
                np.take(parts.v, a_rows, out=av0, mode="clip")
                np.take(parts.v, b_rows, out=av1, mode="clip")
                np.take(parts.w, a_rows, out=aw0, mode="clip")
                np.take(parts.w, b_rows, out=aw1, mode="clip")

            k = 3 + parts.rotational_dof
            signs = parts.scratch.array(
                "ens_signs", n_acc, dtype=np.int8, width=k
            )
            transp = parts.scratch.array(
                "ens_transp", 2 * n_acc, dtype=np.int64
            )
            for r, st in enumerate(streams):
                e0, e1 = int(acc_edges[r]), int(acc_edges[r + 1])
                m_r = e1 - e0
                if m_r == 0:
                    continue
                signs[e0:e1] = random_signs(st, (m_r, k))
                tr = st.integers(0, k, size=2 * m_r)
                transp[e0:e1] = tr[:m_r]
                transp[n_acc + e0 : n_acc + e1] = tr[m_r:]
            if n_acc:
                collide_rows_with_velocities(
                    parts,
                    a_rows,
                    b_rows,
                    au0,
                    au1,
                    av0,
                    av1,
                    aw0,
                    aw1,
                    signs=signs,
                    transpositions=transp,
                )

        # Side work: each replica's reservoir Gaussianizes itself (the
        # mix shuffles and collides within one reservoir -- inherently
        # per-replica, and far smaller than the flow).
        if cfg.reservoir_mix_rounds:
            with perf.phase("reservoir"):
                for r, st in enumerate(streams):
                    self.reservoirs[r].mix(
                        st, rounds=cfg.reservoir_mix_rounds
                    )

        self.step_count += 1
        if sample:
            key = parts.scratch.array("ens_key", parts.n, dtype=np.int64)
            blocked_cell_key(parts.cell, self.starts, n_cells, out=key)
            self.sampler.accumulate(parts, key)
            if self.surfaces is not None:
                for surf in self.surfaces:
                    surf.end_step()

        perf.end_step(n_particles=parts.n)
        diag = EnsembleStepDiagnostics(
            step=self.step_count,
            n_flow=tuple(np.diff(self.starts).astype(int).tolist()),
            n_reservoir=tuple(r.size for r in self.reservoirs),
            n_candidates=n_pairs,
            n_collisions=tuple(
                int(acc_edges[r + 1] - acc_edges[r]) for r in range(n_rep)
            ),
            mean_collision_probability=(
                probability_sum / n_pairs if n_pairs else 0.0
            ),
            boundary=bstats,
            total_energy=parts.total_energy(),
        )
        if self.metrics is not None:
            self._publish_metrics(diag)
        return diag

    def run(
        self, n_steps: int, sample: bool = False
    ) -> EnsembleStepDiagnostics:
        """Run ``n_steps`` steps; returns the final step's diagnostics."""
        if n_steps <= 0:
            raise ConfigurationError("n_steps must be positive")
        diag = None
        for _ in range(n_steps):
            diag = self.step(sample=sample)
        return diag

    def run_schedule(
        self, transient: int, average: int
    ) -> EnsembleStepDiagnostics:
        """Transient then sampling phase (the scenario schedule)."""
        if transient > 0:
            self.run(transient)
        return self.run(average, sample=True)

    # -- boundary phase ---------------------------------------------------

    def _apply_boundaries(self, streams, sample: bool) -> BoundaryStats:
        """Replica-aware mirror of the solo specular fast path.

        The plunger reflection and the wall/wedge passes are purely
        elementwise, so they run over the whole blocked population at
        once; one replica still resolving reflections only adds no-op
        passes for the others.  Population surgery (downstream removal,
        plunger refill) and every RNG consumer (reservoir deposit,
        withdraw, refill positions) go block-by-block so each replica
        sees exactly its solo draws and its solo row arrangement.
        """
        cfg = self.config
        wb = self.boundaries
        parts = self.particles
        domain = cfg.domain
        sc = parts.scratch
        n = parts.n
        x, y, u, v = parts.x, parts.y, parts.u, parts.v
        height = domain.height
        n_walls = 0
        n_wedge = 0
        n_clamped = 0
        record = sample and self.surfaces is not None

        # 1) Upstream plunger face (shared: the piston is geometry, not
        #    randomness -- every replica sees the same wall).
        mask = sc.array("bnd_mask", n, dtype=bool)
        xp = wb.plunger.position
        np.less(x, xp, out=mask)
        behind = np.flatnonzero(mask)
        if behind.size:
            x[behind] = 2.0 * xp - x[behind]
            u[behind] = 2.0 * wb.plunger.speed - u[behind]
            n_walls += int(behind.size)

        # 2) Solid surfaces, iterated to a fixed point on the moved set.
        active: Optional[np.ndarray] = None
        clean = False
        for _ in range(MAX_REFLECTION_PASSES):
            moved = []
            if active is None:
                m2 = sc.array("bnd_mask2", n, dtype=bool)
                np.less(y, 0.0, out=mask)
                np.greater(y, height, out=m2)
                np.logical_or(mask, m2, out=mask)
                off = np.flatnonzero(mask)
            else:
                ys = y[active]
                off = active[(ys < 0.0) | (ys > height)]
            if off.size:
                ys = y[off]
                below = ys < 0.0
                ys[below] = -ys[below]
                above = ys > height
                ys[above] = 2.0 * height - ys[above]
                y[off] = ys
                v[off] = -v[off]
                n_walls += int(off.size)
                moved.append(off)
            if wb.wedge is not None:
                if active is None:
                    idx_in = np.flatnonzero(wb.wedge.inside(x, y))
                else:
                    idx_in = active[wb.wedge.inside(x[active], y[active])]
                if idx_in.size:
                    x0 = x[idx_in]
                    y0 = y[idx_in]
                    u0 = u[idx_in]
                    v0 = v[idx_in]
                    x1, y1, u1, v1, back, ramp = (
                        wb.wedge.reflect_specular_report(x0, y0, u0, v0)
                    )
                    if record:
                        self._record_surface(
                            idx_in, x1, u1 - u0, v1 - v0, back, ramp
                        )
                    x[idx_in] = x1
                    y[idx_in] = y1
                    u[idx_in] = u1
                    v[idx_in] = v1
                    n_wedge += int(idx_in.size)
                    moved.append(idx_in)
            if not moved:
                clean = True
                break
            active = moved[0] if len(moved) == 1 else (
                np.unique(np.concatenate(moved))
            )
        if not clean and active is not None and active.size:
            n_clamped = wb._clamp_subset(parts, active)

        # 3) Soft downstream boundary: blocked removal, per-replica
        #    reservoir deposits from each replica's own stream.
        np.greater_equal(x, domain.width, out=mask)
        n_removed = int(np.count_nonzero(mask))
        if n_removed:
            starts = self.starts
            removed_per = [
                int(
                    np.count_nonzero(
                        mask[int(starts[r]) : int(starts[r + 1])]
                    )
                )
                for r in range(self.n_replicas)
            ]
            self.starts = parts.remove_blocked_inplace(mask, starts)
            for r, st in enumerate(streams):
                if removed_per[r]:
                    self.reservoirs[r].deposit(st, removed_per[r])

        # 4) Advance the plunger; withdraw and refill past the trigger.
        #    The refill count is deterministic and shared; the withdrawn
        #    particles and their seeded positions are per-replica draws.
        n_injected = 0
        reset = False
        wb.plunger.position += wb.plunger.speed
        if wb.plunger.position >= wb.plunger.trigger:
            xp = wb.plunger.position
            area = xp * domain.height * wb.span_depth
            n_new = int(round(cfg.freestream.density * area))
            if n_new:
                fresh = []
                for r, st in enumerate(streams):
                    f = self.reservoirs[r].withdraw(st, n_new)
                    f.x = st.uniform(0.0, xp, size=n_new)
                    f.y = st.uniform(0.0, domain.height, size=n_new)
                    fresh.append(f)
                self.starts = parts.append_blocked_inplace(
                    fresh, self.starts
                )
                n_injected = n_new * self.n_replicas
            wb.plunger.position = 0.0
            reset = True

        return BoundaryStats(
            n_reflected_walls=n_walls,
            n_reflected_wedge=n_wedge,
            n_removed_downstream=n_removed,
            n_injected_upstream=n_injected,
            n_clamped=n_clamped,
            plunger_reset=reset,
        )

    def _record_surface(self, idx_in, x1, du, dv, back, ramp) -> None:
        """Split one wedge-reflection pass's impulses by replica block.

        ``idx_in`` is ascending, so each replica's hits occupy one
        contiguous slice (searchsorted on the block starts) in the same
        relative order a solo run would record them -- the ``np.add.at``
        accumulation inside each sampler is therefore bitwise solo.
        """
        hit = back | ramp
        if not hit.any():
            return
        rows = idx_in[hit]
        xs = x1[hit]
        dus = du[hit]
        dvs = dv[hit]
        backs = back[hit]
        edges = np.searchsorted(rows, self.starts)
        for r in range(self.n_replicas):
            e0, e1 = int(edges[r]), int(edges[r + 1])
            if e1 > e0:
                self.surfaces[r].record(
                    xs[e0:e1], dus[e0:e1], dvs[e0:e1], backs[e0:e1]
                )

    # -- telemetry --------------------------------------------------------

    def _publish_metrics(self, diag: EnsembleStepDiagnostics) -> None:
        m = self.metrics
        m.gauge("ensemble_replicas").set(self.n_replicas)
        m.gauge("ensemble_flow_total").set(diag.n_flow_total)
        m.gauge("ensemble_collisions_total").set(diag.n_collisions_total)
        m.gauge("ensemble_energy_total").set(diag.total_energy)
        for r, rid in enumerate(self.replica_ids):
            labels = {"replica": str(rid)}
            m.gauge("ensemble_flow", labels).set(diag.n_flow[r])
            m.gauge("ensemble_collisions", labels).set(
                diag.n_collisions[r]
            )
            m.gauge("ensemble_reservoir", labels).set(diag.n_reservoir[r])

    # -- results ----------------------------------------------------------

    def density_ratio_fields(
        self, correct_volumes: bool = True
    ) -> List[np.ndarray]:
        """Per-replica time-averaged density-ratio fields."""
        return [
            cs.density_ratio(
                self.config.freestream.density,
                correct_volumes=correct_volumes,
            )
            for cs in self.sampler.samplers()
        ]

    def ramp_pressure_ratios(self) -> Optional[List[float]]:
        """Per-replica mean ramp pressure / freestream static pressure."""
        if self.surfaces is None or self.surfaces[0].steps == 0:
            return None
        fs = self.config.freestream
        p_inf = fs.density * fs.rt
        return [
            float(surf.ramp_pressure()[2:-2].mean() / p_inf)
            for surf in self.surfaces
        ]

    def statistic(
        self, values: Sequence[float], confidence: float = 0.95
    ) -> EnsembleStatistic:
        """Mean / stderr / t-CI of one scalar measure across replicas."""
        if len(values) != self.n_replicas:
            raise ConfigurationError(
                "one value per replica expected "
                f"({len(values)} != {self.n_replicas})"
            )
        return ensemble_statistic(values, confidence=confidence)


# -- scenario metrology over replicas ---------------------------------------


def replica_scenario_runs(engine: EnsembleEngine, spec=None) -> list:
    """Wrap each replica's averages as a golden-harness ScenarioRun.

    Lets the existing check metrology
    (:func:`repro.scenarios.golden.measure_check`) evaluate shock
    angle / plateau density / ramp pressure per replica; feed the
    resulting values to :func:`repro.core.sampling.ensemble_statistic`
    for the confidence interval.
    """
    from repro.scenarios.golden import ScenarioRun

    fields = engine.density_ratio_fields()
    ramps = engine.ramp_pressure_ratios()
    fs = engine.config.freestream
    return [
        ScenarioRun(
            spec=spec,
            fields=[fields[r]],
            body=engine.config.wedge,
            mach=fs.mach,
            gamma=fs.gamma,
            ramp_pressure_ratio=None if ramps is None else ramps[r],
        )
        for r in range(engine.n_replicas)
    ]


# -- the bitwise replica-equality checker -----------------------------------


def replica_state(engine: EnsembleEngine, r: int) -> dict:
    """Snapshot every replica-owned array of replica index ``r``.

    Covers the flow block (all columns), the reservoir population, the
    sampler accumulators, the surface-load accumulators, and the
    shared plunger position -- everything the determinism contract
    promises is bitwise solo.
    """
    b0, b1 = int(engine.starts[r]), int(engine.starts[r + 1])
    state = {
        f"flow_{name}": np.asarray(getattr(engine.particles, name))[
            b0:b1
        ].copy()
        for name in COLUMN_NAMES
    }
    res = engine.reservoirs[r].particles
    for name in COLUMN_NAMES:
        state[f"res_{name}"] = np.asarray(getattr(res, name)).copy()
    n_cells = engine.config.domain.n_cells
    sl = slice(r * n_cells, (r + 1) * n_cells)
    for name in SAMPLER_FIELDS:
        state[f"sampler{name}"] = getattr(engine.sampler, name)[sl].copy()
    state["sampler_steps"] = np.array([engine.sampler.steps])
    if engine.surfaces is not None:
        surf = engine.surfaces[r]
        state["surface_impulse_x"] = surf._impulse_x.copy()
        state["surface_impulse_y"] = surf._impulse_y.copy()
        state["surface_hits"] = surf._hits.copy()
        state["surface_steps"] = np.array([surf.steps])
    state["plunger_position"] = np.array(
        [engine.boundaries.plunger.position]
    )
    state["step_count"] = np.array([engine.step_count])
    return state


def verify_replica_equality(
    config: SimulationConfig,
    n_replicas: int = 2,
    transient: int = 3,
    average: int = 2,
) -> None:
    """Assert batched == solo, bitwise, for every replica.

    The fast-vs-audit cross-check of the determinism contract: run the
    batched engine for ``transient`` unsampled plus ``average`` sampled
    steps, then re-run each replica as a solo (R = 1) engine keyed for
    the same replica id, and require every state array --
    flow columns, reservoir, sampler and surface accumulators -- to be
    ``np.array_equal``.  Raises :class:`repro.errors.ValidationError`
    naming the first differing arrays.
    """
    batched = EnsembleEngine(config, n_replicas=n_replicas)
    if transient > 0:
        batched.run(transient)
    if average > 0:
        batched.run(average, sample=True)
    failures = []
    for r, rid in enumerate(batched.replica_ids):
        solo = EnsembleEngine(config, replica_ids=[rid])
        if transient > 0:
            solo.run(transient)
        if average > 0:
            solo.run(average, sample=True)
        got = replica_state(batched, r)
        want = replica_state(solo, 0)
        for key in sorted(want):
            if not np.array_equal(got[key], want[key]):
                failures.append(f"replica {rid}: {key} differs")
    if failures:
        raise ValidationError(
            "batched-vs-solo bitwise equality failed:\n  "
            + "\n  ".join(failures)
        )
