"""TELEMETRY -- overhead of the telemetry hub at default cadence.

Steps two identical simulations of the hot-path benchmark
configuration (~240k particles, the paper's 98 x 64 wedge at density
40) in *alternating blocks* within one process: one bare, one with a
:class:`repro.telemetry.hub.Telemetry` attached at the default
sampling cadence (JSONL sample + Prometheus snapshot every 10 steps,
driver spans on every step).  Interleaving the blocks makes the
comparison paired -- slow host drift hits both modes equally -- which
matters because the budget is small: the observability milestone
requires **< 3%** overhead.

Both execution modes are measured: the serial engine and the sharded
backend at ``--workers 2`` (where telemetry additionally allocates the
worker span rings, drains them at the barrier and samples shard loads
and channel occupancy).

Standalone: ``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py``
writes ``BENCH_telemetry.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

from bench_step_hotpath import default_config
from common import telemetry_metrics
from repro.core.simulation import Simulation
from repro.telemetry import Telemetry

WARMUP_STEPS = 3
TIMED_STEPS_SERIAL = 60
TIMED_STEPS_SHARDED = 30
BLOCK_STEPS = 10
SAMPLE_EVERY = 10
TARGET_OVERHEAD = 0.03
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _make_backend(workers: int):
    if workers <= 1:
        return None
    from repro.parallel.backend import ShardedBackend

    return ShardedBackend(workers)


def run_mode(
    workers: int,
    steps: int,
    block: int = BLOCK_STEPS,
    sample_every: int = SAMPLE_EVERY,
) -> dict:
    """Paired bare-vs-telemetry timing for one execution mode."""
    bare_sim = Simulation(default_config(), backend=_make_backend(workers))
    bare_seconds = 0.0
    tel_seconds = 0.0
    with tempfile.TemporaryDirectory(prefix="bench_telemetry_") as run_dir:
        tel = Telemetry(run_dir=run_dir, sample_every=sample_every)
        tel_sim = Simulation(
            default_config(), backend=_make_backend(workers), telemetry=tel
        )
        try:
            for _ in range(WARMUP_STEPS):
                bare_sim.step()
                tel_sim.step()
            done = 0
            rnd = 0
            while done < steps:
                n = min(block, steps - done)
                # Alternate which mode goes first so a slow spell never
                # lands systematically on the same mode.
                order = (
                    ("bare", "tel") if rnd % 2 == 0 else ("tel", "bare")
                )
                for mode in order:
                    t0 = time.perf_counter()
                    if mode == "bare":
                        for _ in range(n):
                            bare_sim.step()
                        bare_seconds += time.perf_counter() - t0
                    else:
                        for _ in range(n):
                            tel_sim.step()
                        tel_seconds += time.perf_counter() - t0
                done += n
                rnd += 1
            n_particles = tel_sim.particles.n
            observed = telemetry_metrics(tel)
        finally:
            tel_sim.close()
            tel.close()
            bare_sim.close()
    overhead = tel_seconds / bare_seconds - 1.0
    return {
        "workers": workers,
        "timed_steps": steps,
        "block_steps": block,
        "sample_every": sample_every,
        "n_particles": n_particles,
        "overhead_fraction": overhead,
        "bare_steps_per_sec": steps / bare_seconds,
        "telemetry_steps_per_sec": steps / tel_seconds,
        "bare_seconds": bare_seconds,
        "telemetry_seconds": tel_seconds,
        "telemetry_observed": observed,
    }


def run_benchmark(
    serial_steps: int = TIMED_STEPS_SERIAL,
    sharded_steps: int = TIMED_STEPS_SHARDED,
    workers: int = 2,
    block: int = BLOCK_STEPS,
    sample_every: int = SAMPLE_EVERY,
) -> dict:
    modes = [run_mode(1, serial_steps, block, sample_every)]
    if workers > 1:
        modes.append(run_mode(workers, sharded_steps, block, sample_every))
    return {
        "bench": "telemetry_overhead",
        "target_overhead_fraction": TARGET_OVERHEAD,
        "note": (
            "overhead_fraction is the telemetry-attached slowdown over "
            "a bare run stepped in alternating blocks of the same "
            f"process (JSONL sample + .prom rewrite every {sample_every} "
            "steps, spans every step); the observability milestone "
            "requires < 3% per execution mode"
        ),
        "modes": modes,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--steps", type=int, default=TIMED_STEPS_SERIAL)
    parser.add_argument(
        "--sharded-steps", type=int, default=TIMED_STEPS_SHARDED
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="sharded mode worker count (1 = serial only)")
    parser.add_argument("--block", type=int, default=BLOCK_STEPS)
    parser.add_argument("--sample-every", type=int, default=SAMPLE_EVERY)
    args = parser.parse_args(argv)

    result = run_benchmark(
        serial_steps=args.steps,
        sharded_steps=args.sharded_steps,
        workers=args.workers,
        block=args.block,
        sample_every=args.sample_every,
    )
    out = REPO_ROOT / "BENCH_telemetry.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    for m in result["modes"]:
        print(
            f"workers={m['workers']}: bare {m['bare_steps_per_sec']:6.2f} "
            f"steps/s, telemetry {m['telemetry_steps_per_sec']:6.2f} "
            f"steps/s, overhead {100 * m['overhead_fraction']:+.2f}% "
            f"(target < {100 * result['target_overhead_fraction']:.0f}%)"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
