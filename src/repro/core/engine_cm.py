"""The Connection Machine emulation engine: fixed point + cost ledger.

Runs the identical algorithm to :class:`repro.core.simulation.Simulation`
but the way the paper ran it on the CM-2:

* the particle state lives in **Q8.23 fixed point** (int32 words);
* the collision routine's divisions by two use truncating or
  stochastically rounded halving (:meth:`repro.fixedpoint.QFormat.halve`)
  -- the arithmetic whose energy behaviour the paper discusses;
* the "quick but dirty" low-order bits of the state words drive the
  sort-key mixing, the random transposition, the random signs and the
  rounding bits, exactly the four uses the paper lists;
* every primitive charges the :class:`repro.cm.timing.CostLedger`, with
  communication volumes **measured from the actual send patterns**, so
  the run produces the paper's phase breakdown and the Figure 7 curve.

Emulation shortcut (documented, deliberate): boundary reflections are
computed in float64 on decoded values and re-encoded.  Re-encoding
rounds to the same 2**-23 grid the fixed-point pass would produce, and
boundary arithmetic has no systematic truncation hazard (no divides), so
the physically meaningful fixed-point effects -- collision truncation
loss and its stochastic-rounding fix -- remain bit-faithful while the
geometry code is shared with the reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cm.machine import CM2
from repro.cm.sort import sort_by_key
from repro.cm.timing import CM2TimingModel, CostLedger, CostModel, PhaseBreakdown
from repro.constants import PAPER_CM2_PROCESSORS
from repro.core.boundary import WindTunnelBoundaries
from repro.core.cells import cell_populations, randomized_sort_keys
from repro.core.pairing import even_odd_pairs
from repro.core.particles import ParticleArrays
from repro.core.permutation import apply_permutation
from repro.core.reservoir import Reservoir
from repro.core.sampling import CellSampler
from repro.core.selection import collision_probabilities
from repro.core.simulation import SimulationConfig
from repro.errors import ConfigurationError
from repro.fixedpoint.qformat import Q8_23, QFormat, quick_dirty_bits
from repro.rng import make_rng


@dataclass
class CMState:
    """Fixed-point mirror of the particle state (int32 words)."""

    xq: np.ndarray
    yq: np.ndarray
    uq: np.ndarray
    vq: np.ndarray
    wq: np.ndarray
    rotq: np.ndarray  # (n, rdof)
    perm: np.ndarray
    cell: np.ndarray

    @property
    def n(self) -> int:
        return self.xq.shape[0]


class CMSimulation:
    """Wind-tunnel run on the emulated CM-2.

    Parameters
    ----------
    config:
        Same configuration object as the reference engine.
    machine:
        CM-2 description (defaults to the paper's 32k processors; scaled
        studies pass smaller machines so scaled particle counts cover
        the same VP-ratio range).
    halve_mode:
        ``"stochastic"`` (the paper's fix, default) or ``"truncate"``
        (the raw integer divide whose energy loss the paper observed);
        see :meth:`repro.fixedpoint.QFormat.halve`.
    qformat:
        Fixed-point format (Q8.23 unless studying precision).
    dynamic_vp:
        Future Work: "The newer software allows dynamic modification of
        the virtual processor configuration; this can be used to speed
        up the computational time spent to reach steady state."  True
        (default) sizes the VP set to the live population each step;
        False models the C* 4.3 behaviour, where the configuration is
        fixed at ``vp_capacity`` for the whole run and idle VP slots
        still burn their time slice.
    vp_capacity:
        Static VP-set size when ``dynamic_vp`` is False (defaults to
        130% of the initial population, headroom for the post-shock
        density build-up).
    """

    def __init__(
        self,
        config: SimulationConfig,
        machine: Optional[CM2] = None,
        halve_mode: str = "stochastic",
        qformat: QFormat = Q8_23,
        dynamic_vp: bool = True,
        vp_capacity: Optional[int] = None,
    ) -> None:
        if halve_mode not in ("stochastic", "truncate", "floor", "exact_paper"):
            raise ConfigurationError(f"unknown halve_mode {halve_mode!r}")
        if config.domain.width >= qformat.max_value:
            raise ConfigurationError(
                "domain does not fit the fixed-point integer range; "
                "use a wider format or smaller domain"
            )
        self.config = config
        self.machine = machine or CM2(n_processors=PAPER_CM2_PROCESSORS)
        self.halve_mode = halve_mode
        self.q = qformat
        self.rng = make_rng(config.seed)
        self.ledger = CostLedger()
        self.step_count = 0

        # Shared substrate with the reference engine.
        if config.wedge is not None:
            self.volume_fractions = config.wedge.open_volume_fractions(
                config.domain
            )
        else:
            self.volume_fractions = np.ones(config.domain.shape)
        self._vf_flat = self.volume_fractions.reshape(-1)
        self.boundaries = WindTunnelBoundaries(
            domain=config.domain,
            freestream=config.freestream,
            wedge=config.wedge,
            plunger_trigger=config.plunger_trigger,
        )
        self.sampler = CellSampler(config.domain, self.volume_fractions)
        self.reservoir = Reservoir(
            config.freestream, rotational_dof=config.model.rotational_dof
        )

        # Seed through the reference seeding path, then encode.
        from repro.core.simulation import Simulation  # avoid cycle at import

        ref = Simulation(config)
        self.reservoir = ref.reservoir
        self.state = self._encode(ref.particles)

        self.dynamic_vp = dynamic_vp
        if vp_capacity is None:
            vp_capacity = int(1.3 * self.state.n)
        if vp_capacity < 1:
            raise ConfigurationError("vp_capacity must be positive")
        self.vp_capacity = vp_capacity

    def _geometry(self, n: int):
        """The step's VP geometry under the configured VP policy."""
        if self.dynamic_vp:
            return self.machine.geometry(max(n, 1))
        return self.machine.geometry(max(n, self.vp_capacity, 1))

    # -- representation round-trips ----------------------------------------

    def _encode(self, parts: ParticleArrays) -> CMState:
        return CMState(
            xq=self.q.encode(parts.x),
            yq=self.q.encode(parts.y),
            uq=self.q.encode(parts.u),
            vq=self.q.encode(parts.v),
            wq=self.q.encode(parts.w),
            rotq=self.q.encode(parts.rot),
            perm=parts.perm.copy(),
            cell=parts.cell.copy(),
        )

    def _decode(self, state: CMState) -> ParticleArrays:
        return ParticleArrays(
            x=self.q.decode(state.xq),
            y=self.q.decode(state.yq),
            u=self.q.decode(state.uq),
            v=self.q.decode(state.vq),
            w=self.q.decode(state.wq),
            rot=self.q.decode(state.rotq),
            perm=state.perm,
            cell=state.cell,
        )

    @property
    def particles(self) -> ParticleArrays:
        """Decoded (float) view of the current fixed-point state."""
        return self._decode(self.state)

    def total_energy(self) -> float:
        """Total (translational + rotational) energy, decoded."""
        p = self.particles
        return p.total_energy()

    # -- quick & dirty randomness ---------------------------------------------

    def _qd_bits(self, words: np.ndarray, nbits: int, salt: int) -> np.ndarray:
        """Low-order-bit draws, salted by a counter so repeated reads of
        the same word within a step decorrelate."""
        salted = np.asarray(words, dtype=np.int64) + 0x9E37 * (
            salt + self.step_count
        )
        return quick_dirty_bits(salted & 0x7FFFFFFF, nbits, shift=1)

    # -- one time step -----------------------------------------------------

    def step(self, sample: bool = False) -> dict:
        """Advance one step; returns a small diagnostics dict."""
        cfg = self.config
        st = self.state
        geom = self._geometry(st.n)
        cost = CostModel(geom, self.ledger)

        # ---- 1+2) motion + boundaries -----------------------------------
        with self.ledger.phase("motion"):
            st.xq = self.q.add(st.xq, st.uq)
            st.yq = self.q.add(st.yq, st.vq)
            cost.elementwise(bits=32, nops=2)

            parts = self._decode(st)
            parts, bstats = self.boundaries.apply_rebuilding(
                parts, self.reservoir, self.rng
            )
            st = self._encode(parts)
            cost.elementwise(bits=32, nops=14)  # predicates + reflections

        geom = self._geometry(st.n)
        cost = CostModel(geom, self.ledger)

        # ---- 3) selection of collision partners -------------------------
        with self.ledger.phase("sort"):
            # Cell index from fixed-point positions (integer part).
            ix = np.clip(st.xq >> self.q.frac_bits, 0, cfg.domain.nx - 1)
            iy = np.clip(st.yq >> self.q.frac_bits, 0, cfg.domain.ny - 1)
            st.cell = ix.astype(np.int64) * cfg.domain.ny + iy.astype(np.int64)
            cost.elementwise(bits=32, nops=4)

            # Quick-and-dirty sort-key mixing from position low bits.
            mix = self._qd_bits(st.xq ^ st.yq, 8, salt=1)
            keys = randomized_sort_keys(
                st.cell, scale=cfg.sort_scale, mix_bits=mix
            )
            cost.elementwise(bits=32, nops=3)
            key_bits = max(int(keys.max()).bit_length(), 1) if keys.size else 1
            res = sort_by_key(
                keys, geometry=geom, cost=cost, key_bits=key_bits,
                payload_bits=9 * 32,
            )
            order = res.order
            for col in ("xq", "yq", "uq", "vq", "wq", "rotq", "perm", "cell"):
                setattr(st, col, getattr(st, col)[order])
            sort_offchip = res.offchip_fraction

        with self.ledger.phase("selection"):
            pairs = even_odd_pairs(st.cell)
            counts = cell_populations(st.cell, cfg.domain.n_cells)
            cost.scan(bits=32, nscans=2)
            parts_view = self._decode(st)
            prob, _g = collision_probabilities(
                parts_view, pairs, cfg.freestream, cfg.model, counts,
                volume_fractions=self._vf_flat,
            )
            cost.elementwise(bits=32, nops=14)
            cost.pair_exchange(payload_bits=32)
            draws = self.rng.random(pairs.n_pairs)
            accept = draws < prob

        # ---- 4) collision in fixed point ---------------------------------
        with self.ledger.phase("collision"):
            n_coll = self._collide_fixed(st, pairs.first[accept],
                                         pairs.second[accept], cost)

        if cfg.reservoir_mix_rounds:
            self.reservoir.mix(self.rng, rounds=cfg.reservoir_mix_rounds)

        self.state = st
        self.step_count += 1
        self.ledger.end_step()
        if sample:
            self.sampler.accumulate(self.particles)
        return {
            "step": self.step_count,
            "n_flow": st.n,
            "n_reservoir": self.reservoir.size,
            "n_collisions": int(n_coll),
            "sort_offchip_fraction": float(sort_offchip),
            "total_energy": self.total_energy(),
        }

    def run(self, n_steps: int, sample: bool = False) -> dict:
        """Advance ``n_steps`` steps; returns the last step's dict."""
        if n_steps <= 0:
            raise ConfigurationError("n_steps must be positive")
        out = {}
        for _ in range(n_steps):
            out = self.step(sample=sample)
        return out

    # -- the fixed-point collision kernel ------------------------------------

    def _collide_fixed(
        self,
        st: CMState,
        first: np.ndarray,
        second: np.ndarray,
        cost: CostModel,
    ) -> int:
        """Eqs. (12)-(18) in Q8.23 with the configured halving mode."""
        a = np.asarray(first)
        b = np.asarray(second)
        n = a.shape[0]
        cost.pair_exchange(payload_bits=5 * 32)
        cost.elementwise(bits=32, nops=40)
        if n == 0:
            return 0
        k = 3 + st.rotq.shape[1]
        q = self.q
        mode = self.halve_mode

        cols_a = [st.uq[a], st.vq[a], st.wq[a]] + [
            st.rotq[a, j] for j in range(st.rotq.shape[1])
        ]
        cols_b = [st.uq[b], st.vq[b], st.wq[b]] + [
            st.rotq[b, j] for j in range(st.rotq.shape[1])
        ]

        means = np.empty((n, k), dtype=np.int32)
        halves = np.empty((n, k), dtype=np.int32)
        for j, (ca, cb) in enumerate(zip(cols_a, cols_b)):
            # The divisions by two of eqs. (12)-(15): the truncation
            # hazard.  Rounding bits come from the quick & dirty stream.
            rb_mean = self._qd_bits(st.xq[a], 1, salt=10 + 2 * j)
            rb_half = self._qd_bits(st.yq[b], 1, salt=11 + 2 * j)
            means[:, j] = q.halve(q.add(ca, cb), mode=mode, rand_bits=rb_mean)
            halves[:, j] = q.halve(q.sub(ca, cb), mode=mode, rand_bits=rb_half)

        # Permute by the first partner's permutation vector; random signs
        # from the quick & dirty stream.
        h_new = apply_permutation(halves, st.perm[a])
        sign_bits = np.empty((n, k), dtype=np.int32)
        for j in range(k):
            sign_bits[:, j] = self._qd_bits(st.uq[b], 1, salt=30 + j)
        h_new = np.where(sign_bits == 1, h_new, -h_new).astype(np.int32)

        # Reconstruct: mean +- permuted half-relative (adds, exact).
        st.uq[a] = q.add(means[:, 0], h_new[:, 0])
        st.uq[b] = q.sub(means[:, 0], h_new[:, 0])
        st.vq[a] = q.add(means[:, 1], h_new[:, 1])
        st.vq[b] = q.sub(means[:, 1], h_new[:, 1])
        st.wq[a] = q.add(means[:, 2], h_new[:, 2])
        st.wq[b] = q.sub(means[:, 2], h_new[:, 2])
        for j in range(st.rotq.shape[1]):
            st.rotq[a, j] = q.add(means[:, 3 + j], h_new[:, 3 + j])
            st.rotq[b, j] = q.sub(means[:, 3 + j], h_new[:, 3 + j])

        # One random transposition of each partner's permutation vector.
        ja = self._qd_bits(st.vq[a], 3, salt=50) % k
        jb = self._qd_bits(st.vq[b], 3, salt=51) % k
        _swap_with_first(st.perm, a, ja)
        _swap_with_first(st.perm, b, jb)
        return n

    # -- timing results ---------------------------------------------------------

    def phase_breakdown(
        self, timing_model: Optional[CM2TimingModel] = None
    ) -> PhaseBreakdown:
        """Microseconds/particle/step by phase via the calibrated model."""
        tm = timing_model or CM2TimingModel(machine=self.machine)
        return tm.per_particle_us(self.ledger, n_flow_particles=max(self.state.n, 1))


def _swap_with_first(perm: np.ndarray, rows: np.ndarray, js: np.ndarray) -> None:
    tmp = perm[rows, js].copy()
    perm[rows, js] = perm[rows, 0]
    perm[rows, 0] = tmp


def fixed_point_energy_drift(
    halve_mode: str,
    rounds: int = 60,
    n_particles: int = 4000,
    c_mp_lsb: float = 96.0,
    seed: int = 0,
    qformat: QFormat = Q8_23,
) -> float:
    """Relative energy drift of the fixed-point collision kernel alone.

    The paper's observation: "the consistent truncation after division
    by 2 can lead to a significant loss in total energy in stagnation
    regions of the flow" -- stagnation regions, because there the
    velocity words are only tens of LSBs and a half-LSB truncation per
    halving is a percent-level relative error.  This experiment isolates
    that mechanism: a cold thermal bath (most probable speed ``c_mp_lsb``
    fixed-point LSBs) colliding under the chosen halving mode, no
    boundaries, no selection -- pure eqs. (12)-(18) arithmetic.

    Returns ``(E_end - E_0) / E_0``.  ``"truncate"`` is strongly
    negative; ``"stochastic"`` stays near zero (the paper's fix).
    Used by the ABL2 ablation bench and the integration tests.
    """
    rng = np.random.default_rng(seed)
    c_mp = c_mp_lsb * qformat.resolution
    sigma = c_mp / np.sqrt(2.0)
    vel = rng.normal(0.0, sigma, size=(n_particles, 3))
    rot = rng.normal(0.0, sigma, size=(n_particles, 2))
    words = [qformat.encode(vel[:, j]) for j in range(3)] + [
        qformat.encode(rot[:, j]) for j in range(2)
    ]
    perm = np.argsort(rng.random((n_particles, 5)), axis=1).astype(np.int8)

    def energy() -> float:
        return float(
            sum((qformat.decode(w) ** 2).sum() for w in words)
        )

    e0 = energy()
    rows = np.arange(n_particles // 2)
    for _ in range(rounds):
        order = rng.permutation(n_particles)
        a = order[0::2][: rows.size]
        b = order[1::2][: rows.size]
        means = []
        halves = np.empty((rows.size, 5), dtype=np.int32)
        for j, w in enumerate(words):
            rb1 = rng.integers(0, 2, size=rows.size, dtype=np.int32)
            rb2 = rng.integers(0, 2, size=rows.size, dtype=np.int32)
            means.append(
                qformat.halve(qformat.add(w[a], w[b]), mode=halve_mode, rand_bits=rb1)
            )
            halves[:, j] = qformat.halve(
                qformat.sub(w[a], w[b]), mode=halve_mode, rand_bits=rb2
            )
        h_new = apply_permutation(halves, perm[a])
        signs = rng.integers(0, 2, size=(rows.size, 5)) * 2 - 1
        h_new = (h_new * signs).astype(np.int32)
        for j, w in enumerate(words):
            w[a] = qformat.add(means[j], h_new[:, j])
            w[b] = qformat.sub(means[j], h_new[:, j])
    e1 = energy()
    return (e1 - e0) / e0
