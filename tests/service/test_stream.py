"""Live streaming routes: long-poll, SSE, fleet metrics, watch CLI.

The acceptance surface of the observability layer: a submitted job is
followable end to end over HTTP, a disconnected client resumes via its
cursor without gap or duplicate, /metrics carries per-job labeled
gauges while jobs run (pruned once terminal), and a SIGKILLed worker's
stream still ends cleanly at the job's terminal state.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.errors import JobNotFoundError
from repro.service import Orchestrator, ServiceAPI, ServiceClient
from repro.service import store as st
from repro.service.watch import watch_fleet, watch_job
from tests.service.conftest import fast_config

pytestmark = pytest.mark.service

#: Long enough to observe RUNNING over HTTP, short enough for CI.
STREAM_OVERRIDES = {
    "nx": 32, "ny": 16, "density": 6.0, "transient": 0, "average": 120,
}


@pytest.fixture
def service(tmp_path):
    """(orchestrator, api, client) on an ephemeral localhost port."""
    orch = Orchestrator(
        tmp_path / "svc", fast_config(fleet_every=0.1, prom_every=0.2)
    )
    api = ServiceAPI(orch, port=0)
    client = ServiceClient(f"http://127.0.0.1:{api.port}")
    yield orch, api, client
    api.close()
    if not orch._dead:
        orch.shutdown()


def _submit(client, seed=71, overrides=STREAM_OVERRIDES, **kw):
    return client.submit(
        scenario="wedge", seed=seed, overrides=dict(overrides), **kw
    )["job_id"]


class TestLongPoll:
    def test_followable_end_to_end(self, service):
        _, _, client = service
        job_id = _submit(client)
        events = list(client.iter_events(job_id))
        kinds = [e["kind"] for e in events]
        assert "started" in kinds
        assert kinds.count("heartbeat") >= 3
        assert "done" in kinds
        # Every record is annotated with its source and resume cursor.
        assert all("src" in e and "cursor" in e for e in events)

    def test_cursor_resume_after_disconnect(self, service):
        _, _, client = service
        job_id = _submit(client, seed=72)
        # First client consumes a few events, then "disconnects".
        first, cursor = [], None
        for rec in client.iter_events(job_id):
            first.append(rec)
            cursor = rec["cursor"]
            if len(first) >= 4:
                break
        # A second client resumes from the cursor: the concatenation
        # is exactly the full feed -- no gap, no duplicate.
        rest = list(client.iter_events(job_id, cursor=cursor))
        full = list(client.iter_events(job_id))
        seen = [(e["kind"], e.get("step")) for e in first + rest]
        expect = [(e["kind"], e.get("step")) for e in full]
        assert seen == expect

    def test_poll_timeout_returns_empty_batch(self, service):
        orch, _, client = service
        job_id = _submit(client, seed=73)
        final = client.wait(job_id, timeout=120)
        assert final["state"] == st.DONE
        done = client.events(job_id)  # drain everything
        out = client.events(job_id, cursor=done["cursor"], timeout=0.2)
        assert out["events"] == []
        assert out["terminal"] is True
        assert out["cursor"] == done["cursor"]

    def test_unknown_job_404(self, service):
        _, _, client = service
        with pytest.raises(JobNotFoundError):
            client.events("no-such-job")


class TestSSE:
    def test_stream_ends_with_state_event(self, service):
        _, _, client = service
        job_id = _submit(client, seed=74)
        messages = list(client.stream(job_id))
        assert len(messages) > 3
        final_event, final_data = messages[-1]
        assert final_event == "state"
        assert final_data["terminal"] is True
        assert final_data["state"] == st.DONE
        kinds = [ev for ev, _ in messages]
        assert "heartbeat" in kinds

    def test_reconnect_with_last_event_id(self, service):
        _, _, client = service
        job_id = _submit(client, seed=75)
        got, cursor = [], None
        for ev, data in client.stream(job_id):
            got.append((data.get("kind"), data.get("step")))
            cursor = data.get("cursor", cursor)
            if len(got) >= 3:
                break  # closes the connection mid-stream
        resumed = [
            (data.get("kind"), data.get("step"))
            for ev, data in client.stream(job_id, cursor=cursor)
            if ev != "state"
        ]
        full = [
            (data.get("kind"), data.get("step"))
            for ev, data in client.stream(job_id)
            if ev != "state"
        ]
        assert got + resumed == full

    def test_unknown_job_404(self, service):
        _, _, client = service
        with pytest.raises(JobNotFoundError):
            list(client.stream("no-such-job"))

    def test_sigkilled_worker_stream_ends_cleanly(self, service):
        """Chaos: the worker dies by SIGKILL mid-run; the watcher's
        stream still terminates with the job's terminal state."""
        _, _, client = service
        job_id = _submit(
            client,
            seed=76,
            max_retries=0,
            faults=[{"kind": "worker_kill", "step": 16}],
        )
        messages = list(client.stream(job_id))
        final_event, final_data = messages[-1]
        assert final_event == "state"
        assert final_data["state"] == st.FAILED
        assert final_data["terminal"] is True


class TestFleet:
    def test_fleet_rows_and_metrics_labels(self, service):
        orch, _, client = service
        job_id = _submit(client, seed=77)
        # While RUNNING: /fleet has a live row and /metrics carries the
        # per-job labeled gauges.
        saw_row = saw_gauge = saw_age = False
        deadline = time.time() + 120
        while time.time() < deadline:
            status = client.status(job_id)
            fleet = client.fleet()
            row = next(
                (j for j in fleet["jobs"] if j["job_id"] == job_id), None
            )
            if row is not None and row.get("step") is not None:
                saw_row = True
            prom = client.metrics()
            if f'repro_job_step{{job_id="{job_id}"' in prom:
                saw_gauge = True
                assert 'scenario="wedge"' in prom
            if "repro_job_heartbeat_age_seconds{" in prom:
                saw_age = True
            if status["terminal"] or (saw_row and saw_gauge and saw_age):
                break
            time.sleep(0.05)
        assert saw_row, "no live fleet row with step progress"
        assert saw_gauge, "no per-job labeled gauge on /metrics"
        assert saw_age, "no heartbeat-age gauge while running"

    def test_labeled_series_pruned_when_terminal(self, service):
        orch, _, client = service
        job_id = _submit(client, seed=78)
        client.wait(job_id, timeout=120)
        deadline = time.time() + 10
        while time.time() < deadline:
            client.fleet()  # forces a scrape (prunes terminal series)
            if f'job_id="{job_id}"' not in client.metrics():
                break
            time.sleep(0.05)
        assert f'job_id="{job_id}"' not in client.metrics()
        # The fleet row survives with its final numbers.
        row = next(
            j for j in client.fleet()["jobs"] if j["job_id"] == job_id
        )
        assert row["state"] == st.DONE
        assert row.get("step") == STREAM_OVERRIDES["average"]


class TestWatch:
    def test_watch_job_runs_to_done(self, service):
        _, _, client = service
        job_id = _submit(client, seed=79)
        buf = io.StringIO()
        rc = watch_job(client, job_id, out=buf, poll_timeout=2.0)
        assert rc == 0
        text = buf.getvalue()
        assert "100%" in text
        assert "us/particle" in text
        assert "[DONE]" in text

    def test_watch_fleet_exits_when_all_terminal(self, service):
        _, _, client = service
        _submit(client, seed=80)
        _submit(client, seed=81, overrides=dict(STREAM_OVERRIDES, average=96))
        buf = io.StringIO()
        rc = watch_fleet(client, out=buf, interval=0.2)
        assert rc == 0
        assert "DONE" in buf.getvalue()

    def test_cli_watch_command(self, service):
        from repro.cli import main

        _, api, client = service
        job_id = _submit(client, seed=82)
        rc = main(
            ["watch", job_id, "--url", f"http://127.0.0.1:{api.port}"]
        )
        assert rc == 0
