"""Unit tests for the baseline collision schemes and the heat bath."""

import numpy as np
import pytest

from repro.baselines import (
    BaganoffSelection,
    BirdNTC,
    BirdTimeCounter,
    HeatBath,
    NanbuPloss,
)
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream


@pytest.fixture
def fs():
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=2.0, density=100.0)


@pytest.fixture
def bath(fs):
    return HeatBath(n_particles=4000, n_cells=40, freestream=fs)


class TestHeatBath:
    def test_initial_population_far_from_gaussian(self, bath, rng):
        pop = bath.initial_population(rng)
        from repro.physics.distributions import excess_kurtosis

        k = excess_kurtosis(pop.u[:, None])[0]
        assert k < -1.0

    def test_validation(self, fs):
        with pytest.raises(ConfigurationError):
            HeatBath(n_particles=1, n_cells=4, freestream=fs)


class TestBird:
    def test_exact_conservation(self, bath, fs):
        r = bath.run(BirdTimeCounter(fs), steps=10, seed=1)
        assert r.energy_drift < 1e-10
        assert r.momentum_drift < 1e-10

    def test_relaxes_toward_gaussian(self, bath, fs):
        r = bath.run(BirdTimeCounter(fs), steps=60, seed=1)
        assert abs(r.final_kurtosis) < 0.25

    def test_collision_rate_matches_kinetic_theory(self, fs):
        # Half a collision per particle per mean collision time, at a
        # bath whose cell density equals the freestream anchor
        # (1600 particles / 16 cells = density 100).
        bath = HeatBath(n_particles=1600, n_cells=16, freestream=fs)
        scheme = BirdTimeCounter(fs)
        steps = 30
        r = bath.run(scheme, steps=steps, seed=2)
        expected = scheme.expected_collisions_per_step(1600) * steps
        assert r.total_collisions == pytest.approx(expected, rel=0.1)

    def test_rejects_continuum(self):
        with pytest.raises(ConfigurationError):
            BirdTimeCounter(Freestream(lambda_mfp=0.0))


class TestNanbu:
    def test_one_sided_update_breaks_per_collision_conservation(self, bath, fs):
        # The paper's criticism: only cell-mean conservation.
        r = bath.run(NanbuPloss(fs), steps=30, seed=1)
        assert r.energy_drift > 1e-6
        assert r.momentum_drift > 1e-6

    def test_drift_is_still_bounded(self, bath, fs):
        # Mean conservation: the drift is statistical, not systematic.
        r = bath.run(NanbuPloss(fs), steps=30, seed=1)
        assert r.energy_drift < 0.1

    def test_relaxes_toward_gaussian(self, bath, fs):
        r = bath.run(NanbuPloss(fs), steps=60, seed=1)
        assert abs(r.final_kurtosis) < 0.25

    def test_rejects_continuum(self):
        with pytest.raises(ConfigurationError):
            NanbuPloss(Freestream(lambda_mfp=0.0))


class TestBirdNTC:
    def test_exact_conservation(self, bath, fs):
        r = bath.run(BirdNTC(fs), steps=10, seed=1)
        assert r.energy_drift < 1e-10
        assert r.momentum_drift < 1e-10

    def test_relaxes_toward_gaussian(self, bath, fs):
        r = bath.run(BirdNTC(fs), steps=60, seed=1)
        assert abs(r.final_kurtosis) < 0.25

    def test_collision_rate_matches_kinetic_theory(self, fs):
        bath = HeatBath(n_particles=1600, n_cells=16, freestream=fs)
        scheme = BirdNTC(fs)
        steps = 30
        r = bath.run(scheme, steps=steps, seed=2)
        expected = scheme.expected_collisions_per_step(1600) * steps
        assert r.total_collisions == pytest.approx(expected, rel=0.1)

    def test_rate_independent_of_majorant(self, fs):
        # The defining NTC property: the majorant cancels.
        bath = HeatBath(n_particles=1600, n_cells=16, freestream=fs)
        r_lo = bath.run(BirdNTC(fs, majorant_factor=1.1), steps=20, seed=3)
        r_hi = bath.run(BirdNTC(fs, majorant_factor=3.0), steps=20, seed=3)
        assert r_hi.total_collisions == pytest.approx(
            r_lo.total_collisions, rel=0.1
        )

    def test_validation(self, fs):
        from repro.physics.freestream import Freestream as FS

        with pytest.raises(ConfigurationError):
            BirdNTC(FS(lambda_mfp=0.0))
        with pytest.raises(ConfigurationError):
            BirdNTC(fs, majorant_factor=0.5)


class TestBaganoff:
    def test_exact_conservation(self, bath, fs):
        r = bath.run(BaganoffSelection(fs), steps=10, seed=1)
        assert r.energy_drift < 1e-10
        assert r.momentum_drift < 1e-10

    def test_relaxes_toward_gaussian(self, bath, fs):
        r = bath.run(BaganoffSelection(fs), steps=60, seed=1)
        assert abs(r.final_kurtosis) < 0.25

    def test_collision_rate_comparable_to_bird(self, bath, fs):
        # Same physics, same rate (within pairing losses ~ few %).
        rb = bath.run(BirdTimeCounter(fs), steps=20, seed=3)
        rm = bath.run(BaganoffSelection(fs), steps=20, seed=3)
        assert rm.total_collisions == pytest.approx(
            rb.total_collisions, rel=0.15
        )

    def test_vectorized_speed_advantage(self, fs):
        # The fine-grained scheme's throughput should beat the per-cell
        # counter loop by a wide margin at scale.
        bath = HeatBath(n_particles=30_000, n_cells=300, freestream=fs)
        rb = bath.run(BirdTimeCounter(fs), steps=3, seed=1)
        rm = bath.run(BaganoffSelection(fs), steps=3, seed=1)
        assert rm.seconds < rb.seconds
