"""Fault-tolerant supervised execution.

Three cooperating layers turn a long particle run from "dies at step
4,812" into "recovers and finishes":

* :mod:`repro.resilience.faults` -- deterministic, seed-keyed fault
  injection (worker crash/hang, exchange overflow, corrupted payloads,
  truncated checkpoints) behind zero-overhead hooks in the backend,
  the migration channels, and the snapshot writer.
* :mod:`repro.resilience.audit` -- configurable-cadence O(N) invariant
  audits (count accounting, finite state, fixed-point range, cell
  consistency, slab containment, channel conservation) raising typed
  :class:`repro.errors.InvariantViolationError`.
* :mod:`repro.resilience.supervisor` -- a checkpoint/restart harness
  (:class:`SupervisedRun`) that detects worker death, hangs and audit
  failures, respawns the backend from the last good checkpoint with
  bounded retries, degrades sharded -> serial after repeated parallel
  faults, and journals every recovery event.

Recovery at the same worker count is bitwise identical to an unfailed
run: the counter-based ``(seed, shard, step)`` Philox streams make a
replay from a checkpoint reproduce the lost steps exactly.
"""

from repro.resilience.audit import AuditConfig, InvariantAuditor
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.supervisor import (
    RecoveryEvent,
    RunJournal,
    SupervisedRun,
)

__all__ = [
    "AuditConfig",
    "FaultPlan",
    "FaultSpec",
    "InvariantAuditor",
    "RecoveryEvent",
    "RunJournal",
    "SupervisedRun",
]
