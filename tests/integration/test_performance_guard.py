"""Performance regression guards (generous bounds, CI-safe).

The hpc-parallel guides' core demand is that the hot paths stay
vectorized: a Python-level per-particle loop sneaking into motion,
selection or collision shows up as a 10-100x throughput cliff.  These
guards use deliberately loose thresholds (5-10x headroom over measured)
so they only fire on structural regressions, not on machine noise.

The hot-path engine adds two sharper guarantees worth guarding:

* the fused counting-sort kernel keeps the whole step O(N), so the
  per-particle time bound tightens from the old 3 us to 1.5 us;
* steady-state stepping performs **zero retained O(N) allocations**
  (every per-step temporary lives in the preallocated scratch pool),
  checked directly with tracemalloc.
"""

import dataclasses
import gc
import time
import tracemalloc

import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.perf


def _wedge_config(density, seed):
    return SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=seed,
    )


class TestThroughput:
    def test_reference_engine_stays_vectorized(self):
        # Hot path measured ~0.25 us/particle/step on one laptop core;
        # 1.5 us is a 5x+ cushion that neither a per-particle Python
        # loop (30+ us) nor losing the O(N) counting sort back to the
        # wide-key argsort (~2x) can hide under.
        sim = Simulation(_wedge_config(density=10.0, seed=1))
        sim.run(5)  # warm up
        n = sim.particles.n
        steps = 20
        t0 = time.perf_counter()
        sim.run(steps)
        per_particle_us = (time.perf_counter() - t0) / steps / n * 1e6
        assert per_particle_us < 1.5, (
            f"{per_particle_us:.2f} us/particle/step: a hot path has "
            "likely devectorized or fallen off the O(N) sort"
        )

    @pytest.mark.parametrize("kernel", ["counting", "incremental"])
    def test_stepping_retains_no_per_particle_memory(self, kernel):
        # The scratch-buffer contract: after the pool is warm, stepping
        # must not RETAIN any O(N) allocation (transient RNG draws are
        # fine; they are freed within the step).  One float64 column
        # here is ~8 * n bytes; the threshold is a small fraction of
        # one column, far below any leaked per-particle array.  Both
        # sort kernels must honor it: the incremental path's cached
        # order and the fused selection/collision scratch are sized
        # once and reused, never regrown per step.
        cfg = dataclasses.replace(
            _wedge_config(density=10.0, seed=1), sort_kernel=kernel
        )
        sim = Simulation(cfg)
        sim.run(10)  # past the start-up transient; pool fully grown
        gc.collect()
        tracemalloc.start()
        try:
            gc.collect()
            base = tracemalloc.get_traced_memory()[0]
            sim.run(6)
            gc.collect()
            grown = tracemalloc.get_traced_memory()[0] - base
        finally:
            tracemalloc.stop()
        n = sim.particles.n
        assert n > 50_000  # the guard must be exercising real scale
        assert grown < n, (
            f"stepping retained {grown} bytes over 6 steps "
            f"(n={n}): an O(N) per-step allocation is being kept alive"
        )

    def test_seeding_is_fast(self):
        # Rejection seeding must not loop per particle either.
        cfg = SimulationConfig(
            domain=Domain(98, 64),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=20.0
            ),
            wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
            seed=2,
        )
        t0 = time.perf_counter()
        sim = Simulation(cfg)
        assert time.perf_counter() - t0 < 5.0
        assert sim.particles.n > 100_000
