"""Unit tests of the resilience primitives: fault plans and typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CheckpointCorruptionError,
    ExchangeOverflowError,
    InvariantViolationError,
    RecoveryExhaustedError,
    ReproError,
    ResilienceError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faults import (
    ANY_SHARD,
    FAULT_KINDS,
    SERVICE_FAULT_KINDS,
    STEP_FAULT_KINDS,
)

pytestmark = pytest.mark.resilience


class TestErrorTaxonomy:
    def test_all_resilience_errors_are_repro_errors(self):
        for cls in (
            WorkerCrashError,
            WorkerHangError,
            ExchangeOverflowError,
            InvariantViolationError,
            CheckpointCorruptionError,
            RecoveryExhaustedError,
        ):
            assert issubclass(cls, ResilienceError)
            assert issubclass(cls, ReproError)

    def test_context_is_carried_and_rendered(self):
        err = WorkerCrashError("worker died", step=12, shard=3)
        assert err.context == {"step": 12, "shard": 3}
        assert "step=12" in str(err)
        assert "shard=3" in str(err)

    def test_none_context_values_are_dropped(self):
        err = WorkerHangError("stuck", step=None, timeout_s=5.0)
        assert "step" not in err.context
        assert err.context["timeout_s"] == 5.0


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", step=0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec("crash", step=-1)

    def test_kinds_cover_the_documented_set(self):
        assert set(STEP_FAULT_KINDS) == {
            "crash", "exception", "hang", "overflow", "corrupt", "truncate",
        }
        assert set(SERVICE_FAULT_KINDS) == {
            "worker_kill", "worker_stall", "journal_tear",
            "orchestrator_kill",
        }
        assert set(FAULT_KINDS) == (
            set(STEP_FAULT_KINDS) | set(SERVICE_FAULT_KINDS)
        )

    def test_dict_round_trip(self):
        spec = FaultSpec("worker_kill", step=16, shard=ANY_SHARD)
        back = FaultSpec.from_dict(spec.to_dict())
        assert (back.kind, back.step, back.shard) == (
            spec.kind, spec.step, spec.shard,
        )
        stall = FaultSpec.from_dict(
            {"kind": "worker_stall", "step": 4, "seconds": 2.5}
        )
        assert stall.seconds == 2.5


class TestFaultPlan:
    def test_take_fires_once(self):
        plan = FaultPlan([FaultSpec("crash", step=5, shard=1)])
        assert plan.armed
        assert plan.take("crash", 3, 1) is None       # too early
        assert plan.take("crash", 5, 0) is None       # wrong shard
        spec = plan.take("crash", 5, 1)
        assert spec is not None and spec.fired
        assert plan.take("crash", 6, 1) is None       # fire-once
        assert not plan.armed

    def test_step_is_a_floor_not_an_exact_match(self):
        plan = FaultPlan([FaultSpec("overflow", step=5)])
        assert plan.take("overflow", 9, 0) is not None

    def test_any_shard_matches_first_comer(self):
        plan = FaultPlan([FaultSpec("hang", step=2, shard=ANY_SHARD)])
        assert plan.take("hang", 2, 7) is not None

    def test_shard_none_skips_shard_filter(self):
        plan = FaultPlan([FaultSpec("truncate", step=4, shard=2)])
        assert plan.take("truncate", 4) is not None

    def test_disarm_through(self):
        plan = FaultPlan(
            [FaultSpec("crash", step=5), FaultSpec("crash", step=50)]
        )
        assert plan.disarm_through(10) == 1
        assert plan.take("crash", 10, 0) is None      # early one disarmed
        assert plan.take("crash", 50, 0) is not None  # later one survives

    def test_corruption_pattern_is_deterministic_and_nasty(self):
        plan = FaultPlan([], seed=9)
        a = plan.corruption_pattern(3, 1, (4, 6))
        b = plan.corruption_pattern(3, 1, (4, 6))
        assert a.shape == (4, 6)
        assert np.array_equal(a, b, equal_nan=True)
        assert not np.isfinite(a).all() or np.abs(a[np.isfinite(a)]).max() > 1e20
        c = plan.corruption_pattern(4, 1, (4, 6))
        assert not np.array_equal(a, c, equal_nan=True)

    def test_describe_is_serializable(self):
        import json

        plan = FaultPlan([FaultSpec("exception", step=1, shard=0)])
        blob = json.dumps(plan.describe())
        assert "exception" in blob


class TestBackoffJitter:
    """The supervisor's jittered exponential backoff (satellite of the
    service PR: decorrelates retries without touching the sim RNG)."""

    def _run(self, base, factor=2.0, jitter=0.5):
        from repro.resilience.supervisor import SupervisedRun

        run = SupervisedRun.__new__(SupervisedRun)
        run.backoff_base = base
        run.backoff_factor = factor
        run.backoff_jitter = jitter
        return run

    def test_zero_base_stays_exactly_zero(self):
        # The fast test path: backoff_base=0 must never sleep, jitter
        # or not.
        run = self._run(0.0, jitter=0.5)
        assert all(run._backoff_seconds(r) == 0.0 for r in (1, 2, 5))

    def test_zero_jitter_is_deterministic(self):
        run = self._run(0.5, factor=2.0, jitter=0.0)
        assert run._backoff_seconds(1) == 0.5
        assert run._backoff_seconds(3) == 2.0

    def test_jitter_stays_inside_the_band_and_varies(self):
        run = self._run(1.0, factor=2.0, jitter=0.5)
        for retry, nominal in ((1, 1.0), (2, 2.0), (3, 4.0)):
            samples = [run._backoff_seconds(retry) for _ in range(200)]
            assert all(
                0.5 * nominal <= s <= 1.5 * nominal for s in samples
            )
            assert max(samples) - min(samples) > 0.1 * nominal

    def test_jitter_out_of_range_rejected(self):
        from repro.errors import ConfigurationError
        from repro.resilience.supervisor import SupervisedRun

        with pytest.raises(ConfigurationError, match="backoff_jitter"):
            SupervisedRun(object(), "/nonexistent", backoff_jitter=1.5)
