"""The free-molecular (Kn -> infinity) bracket of the wedge problem.

The paper covers near-continuum (lambda = 0) and slip/transitional
(Kn = 0.02); the opposite limit -- no collisions at all -- has an exact
kinetic-theory surface-pressure formula, giving an end-to-end check of
motion + boundary machinery with the collision operator switched off.
"""

import math

import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.slow


class TestTheoryFormula:
    def test_static_gas_limit(self):
        # No drift: the specular wall feels exactly p = rho R T.
        assert theory.free_molecular_specular_pressure_ratio(
            0.0, math.radians(30.0)
        ) == pytest.approx(1.0)

    def test_zero_incidence(self):
        # Surface parallel to the stream: static pressure again.
        assert theory.free_molecular_specular_pressure_ratio(
            4.0, 0.0
        ) == pytest.approx(1.0)

    def test_hypersonic_newtonian_limit(self):
        # s >> 1: p -> 2 rho U_n^2 = 2 rho gamma M^2 sin^2(theta) RT.
        mach, ang = 20.0, math.radians(30.0)
        expected = 2.0 * 1.4 * mach**2 * math.sin(ang) ** 2
        got = theory.free_molecular_specular_pressure_ratio(mach, ang)
        assert got == pytest.approx(expected, rel=0.01)

    def test_monotone_in_incidence(self):
        vals = [
            theory.free_molecular_specular_pressure_ratio(4.0, math.radians(a))
            for a in (5.0, 15.0, 30.0, 60.0)
        ]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.free_molecular_specular_pressure_ratio(-1.0, 0.1)
        with pytest.raises(ConfigurationError):
            theory.free_molecular_specular_pressure_ratio(2.0, -0.1)


class TestCollisionlessWedge:
    @pytest.fixture(scope="class")
    def run(self):
        # lambda >> domain: essentially no collisions happen.
        cfg = SimulationConfig(
            domain=Domain(49, 32),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=1.0e9, density=14.0
            ),
            wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
            seed=8,
        )
        sim = Simulation(cfg)
        sim.run(180)
        sim.run(220, sample=True)
        return sim

    def test_no_collisions_happen(self, run):
        d = run.step()
        assert d.n_collisions == 0

    def test_surface_pressure_matches_free_molecular_theory(self, run):
        fs = run.config.freestream
        p_inf = fs.density * fs.rt
        measured = run.surface.ramp_pressure()[2:-2].mean() / p_inf
        expected = theory.free_molecular_specular_pressure_ratio(
            fs.mach, run.config.wedge.angle, fs.gamma
        )
        assert measured == pytest.approx(expected, rel=0.1)

    def test_free_molecular_pressure_exceeds_continuum(self, run):
        # Specular free-molecular reflection doubles the incident
        # normal momentum, beating the continuum post-shock pressure
        # at this Mach/angle (22.9 vs 9.2 p_inf).
        fs = run.config.freestream
        fm = theory.free_molecular_specular_pressure_ratio(
            fs.mach, run.config.wedge.angle, fs.gamma
        )
        from repro.core.surface import oblique_shock_surface_pressure_ratio

        cont = oblique_shock_surface_pressure_ratio(
            fs.mach, run.config.wedge.angle_deg, fs.gamma
        )
        assert fm > cont

    def test_no_shock_forms(self, run):
        # Without collisions there is no shock: the region over the
        # ramp is a *two-stream overlap* (incident + specular beam,
        # density ~1.9), nowhere near the 3.7 compression, and the
        # upstream region stays exactly freestream (the reflected beam
        # travels up-and-downstream, never upstream).
        rho = run.density_ratio_field()
        assert rho[2:8, 2:28].mean() == pytest.approx(1.0, abs=0.08)
        overlap = rho[14:22, 6:12].mean()
        assert 1.5 < overlap < 2.5
        assert rho.max() < 3.0  # no Rankine-Hugoniot compression
