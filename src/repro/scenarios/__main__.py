"""Golden-file maintenance CLI: ``python -m repro.scenarios``.

Regenerates the committed golden observables of the named scenarios
(or, with no names, every scenario that declares a golden file) from a
cross-seed sweep, then re-validates against the fresh file.  Run this
after an *intentional* physics change and commit the updated JSON; see
``docs/scenarios.md`` for the tolerance methodology.
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios import (
    all_specs,
    get,
    golden,
    regenerate_golden,
    validate_scenario,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="scenarios to regenerate (default: all with golden files)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="seeds in the spread sweep (default 3)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the would-be golden blobs without writing",
    )
    args = parser.parse_args(argv)

    if args.names:
        specs = [get(n) for n in args.names]
    else:
        specs = [s for s in all_specs() if s.validation.get("golden")]
    failed = False
    for spec in specs:
        if not spec.validation.get("golden"):
            print(f"{spec.name}: no golden file declared, skipping")
            continue
        blob = regenerate_golden(
            spec, n_seeds=args.seeds, write=not args.dry_run
        )
        path = golden.golden_path(spec)
        action = "would write" if args.dry_run else "wrote"
        print(f"{spec.name}: {action} {path.name}")
        for name, entry in blob["observables"].items():
            print(
                f"  {name:<24s} value {entry['value']:10.4f}  "
                f"tol {entry['tol']:.4f}  spread {entry['spread']:.4f}"
            )
        if not args.dry_run:
            report = validate_scenario(spec)
            print(report.to_text())
            failed = failed or not report.ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
