"""The wedge (inclined flat plate) body.

"In the present implementation the only geometry supported is an
inclined flat plate."  The validation runs put a 30-degree wedge on the
tunnel floor, leading edge 20 cells from the upstream boundary, 25 cells
wide at the base: a right triangle

    (x0, 0) --ramp at angle--> (x0 + base, base * tan(angle))
                                   |  vertical back face
    (x0, 0) -----------------> (x0 + base, 0)

The supersonic stream compresses through the attached oblique shock off
the ramp, expands around the top corner (Prandtl-Meyer fan) and, in the
near-continuum case, recompresses in a wake shock where the expanded
flow meets the floor -- the features of figures 1-6.

Cells cut by the ramp get **fractional volumes**: "where cells are
divided by the wedge special allowance must be made for the fractional
cell volume when employing the selection rule (equation (8)) and in
computing the time average cell density."  Volumes are computed once at
construction by supersampling each cell (vectorized; 16x16 subcells,
<0.5% area error) so the machinery generalizes to other bodies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.domain import Domain


@dataclass(frozen=True)
class Wedge:
    """A wedge (ramp + vertical back face) on the tunnel floor.

    Parameters
    ----------
    x_leading:
        x coordinate of the leading edge (cells from the upstream
        boundary; the paper uses 20).
    base:
        Base width in cell widths (the paper uses 25).
    angle_deg:
        Ramp angle in degrees (the paper uses 30).
    """

    x_leading: float = 20.0
    base: float = 25.0
    angle_deg: float = 30.0

    kind = "wedge"

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise GeometryError(f"base must be positive, got {self.base}")
        if not 0.0 < self.angle_deg < 90.0:
            raise GeometryError(
                f"angle must be in (0, 90) degrees, got {self.angle_deg}"
            )
        if self.x_leading < 0:
            raise GeometryError("x_leading must be non-negative")

    # -- derived shape ------------------------------------------------------

    @property
    def angle(self) -> float:
        """Ramp angle in radians."""
        return math.radians(self.angle_deg)

    @property
    def slope(self) -> float:
        """tan(angle): ramp rise per unit x."""
        return math.tan(self.angle)

    @property
    def height(self) -> float:
        """Height of the back face, base * tan(angle)."""
        return self.base * self.slope

    @property
    def x_trailing(self) -> float:
        """x coordinate of the back face."""
        return self.x_leading + self.base

    @property
    def corner(self) -> Tuple[float, float]:
        """The expansion corner at the top of the ramp."""
        return (self.x_trailing, self.height)

    @property
    def ramp_normal(self) -> Tuple[float, float]:
        """Outward (into-flow) unit normal of the ramp surface."""
        return (-math.sin(self.angle), math.cos(self.angle))

    def validate_in(self, domain: Domain) -> None:
        """Raise unless the wedge fits inside the domain with margins."""
        if self.x_trailing >= domain.width:
            raise GeometryError(
                f"wedge trailing edge {self.x_trailing} outside domain "
                f"width {domain.width}"
            )
        if self.height >= domain.height:
            raise GeometryError(
                f"wedge height {self.height:.2f} exceeds domain height "
                f"{domain.height}"
            )

    # -- point classification --------------------------------------------

    def ramp_height_at(self, x: np.ndarray) -> np.ndarray:
        """Solid surface height at each x (0 outside the footprint)."""
        x = np.asarray(x, dtype=np.float64)
        h = (x - self.x_leading) * self.slope
        h = np.where((x >= self.x_leading) & (x <= self.x_trailing), h, 0.0)
        return h

    def inside(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mask of points strictly inside the solid wedge."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        in_footprint = (x > self.x_leading) & (x < self.x_trailing)
        return in_footprint & (y < (x - self.x_leading) * self.slope) & (y >= 0)

    def penetration_depth(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Perpendicular distance below the ramp plane (0 if outside).

        Only meaningful for points inside the footprint; used by the
        reflection resolver to decide which face a particle crossed.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        d = ((x - self.x_leading) * self.slope - y) * math.cos(self.angle)
        return np.where(self.inside(x, y), d, 0.0)

    # -- fractional cell volumes -------------------------------------------

    def open_volume_fractions(
        self, domain: Domain, supersample: int = 16
    ) -> np.ndarray:
        """Open (gas-accessible) area fraction of every cell.

        Returns an ``(nx, ny)`` float array in [0, 1]: 1 for cells fully
        in the flow, 0 for cells swallowed by the wedge, intermediate
        for cut cells.  Computed by vectorized supersampling: each cell
        is probed at ``supersample**2`` interior points.
        """
        if supersample < 2:
            raise GeometryError("supersample must be >= 2")
        self.validate_in(domain)
        # Subcell probe offsets (cell-relative, centered).
        s = (np.arange(supersample) + 0.5) / supersample
        ox, oy = np.meshgrid(s, s, indexing="ij")  # (S, S)
        ci = np.arange(domain.nx, dtype=np.float64)
        cj = np.arange(domain.ny, dtype=np.float64)
        # Probe coordinates: (nx, ny, S, S) via broadcasting.
        px = ci[:, None, None, None] + ox[None, None, :, :]
        py = cj[None, :, None, None] + oy[None, None, :, :]
        solid = self.inside(px, py)
        return 1.0 - solid.mean(axis=(2, 3))

    def project_out(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Lift stragglers onto the ramp surface, just outside.

        Last-resort positional rescue used by the boundary clamp after
        the bounded reflection iteration: x unchanged, y placed an
        epsilon above the local surface height.
        """
        x = np.asarray(x, dtype=np.float64)
        return x, self.ramp_height_at(x) + 1e-9

    def to_config_dict(self) -> dict:
        """Body parameters keyed for :func:`repro.geometry.bodies.body_from_dict`."""
        return {
            "kind": self.kind,
            "x_leading": self.x_leading,
            "base": self.base,
            "angle_deg": self.angle_deg,
        }

    # -- reflection -----------------------------------------------------------

    def reflect_specular(
        self, x: np.ndarray, y: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Specular reflection (positions + velocities only)."""
        x2, y2, u2, v2, _back, _ramp = self.reflect_specular_report(x, y, u, v)
        return x2, y2, u2, v2

    def reflect_specular_report(
        self, x: np.ndarray, y: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Specularly reflect points that penetrated the wedge.

        Particles inside the solid are classified by which face they
        most plausibly crossed:

        * inside the footprint and left of the back-face band -> ramp
          reflection: position mirrored across the ramp plane, velocity
          reflected about the ramp normal;
        * entered through the back face (x just past ``x_trailing``
          moving upstream is handled by the caller's domain pass; here a
          particle inside the solid with incoming -x velocity near the
          back face mirrors across ``x = x_trailing``).

        Returns updated copies of (x, y, u, v) plus the back-face and
        ramp reflection masks (used by the surface-load sampler).  The
        caller iterates this with the wall pass until no particle is
        inside any solid (a particle reflected off the ramp can land
        below the floor and vice versa).
        """
        x = np.array(x, dtype=np.float64, copy=True)
        y = np.array(y, dtype=np.float64, copy=True)
        u = np.array(u, dtype=np.float64, copy=True)
        v = np.array(v, dtype=np.float64, copy=True)

        inside = self.inside(x, y)
        if not np.any(inside):
            none = np.zeros_like(inside)
            return x, y, u, v, none, none

        # Back-face crossing: the particle is inside the solid, moving
        # in -x, and its pre-step position (x - u) was at or past the
        # vertical face -- it entered from the wake side.
        back = inside & (u < 0) & (x - u >= self.x_trailing)
        ramp = inside & ~back

        if np.any(back):
            x[back] = 2.0 * self.x_trailing - x[back]
            u[back] = -u[back]

        if np.any(ramp):
            # Mirror across the ramp plane through (x_leading, 0) with
            # unit normal n = (-sin a, cos a): p' = p - 2 (d . n) n where
            # d = signed distance (negative below the plane).
            sa, ca = math.sin(self.angle), math.cos(self.angle)
            dx = x[ramp] - self.x_leading
            dist = -sa * dx + ca * y[ramp]  # signed distance to plane
            x[ramp] = x[ramp] + 2.0 * dist * sa
            y[ramp] = y[ramp] - 2.0 * dist * ca
            # Velocity: reflect about the plane normal.
            un, vn = u[ramp], v[ramp]
            vdotn = -sa * un + ca * vn
            u[ramp] = un + 2.0 * vdotn * sa
            v[ramp] = vn - 2.0 * vdotn * ca
        return x, y, u, v, back, ramp
