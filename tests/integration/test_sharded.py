"""Integration tests of the domain-sharded execution backend.

The contract under test (ROADMAP: process-parallel stepping):

* ``n_workers=1`` is the serial engine, bitwise, for the paper's
  default Mach-4 wedge configuration -- the backend seam adds nothing.
* Process workers and the in-process (inline) debug mode produce
  bitwise identical trajectories: the fork/shared-memory machinery is
  pure transport.
* A sharded run is reproducible run to run (the per-shard RNG streams
  are counter-based functions of ``(seed, shard, step)``, not shared
  mutable state).
* A sharded run checkpoints and restores bitwise (dynamics; the
  surface-load float accumulators are associativity-limited to ~1 ulp).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.io.snapshots import load_simulation, save_simulation
from repro.parallel.backend import ShardedBackend
from repro.physics.freestream import Freestream

pytestmark = pytest.mark.sharded

PARTICLE_COLUMNS = ("x", "y", "u", "v", "w", "rot", "perm", "cell")


def _small_config(seed: int = 42, nx: int = 32, ny: int = 16) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=nx, ny=ny),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0),
        wedge=Wedge(x_leading=8.0, base=9.0, angle_deg=30.0),
        seed=seed,
    )


def _assert_particles_equal(a, b, what: str) -> None:
    assert a.n == b.n, f"{what}: population sizes differ"
    for col in PARTICLE_COLUMNS:
        assert np.array_equal(getattr(a, col), getattr(b, col)), (
            f"{what}: column {col} not bitwise identical"
        )


def _assert_sims_equal(a: Simulation, b: Simulation, what: str) -> None:
    _assert_particles_equal(a.particles, b.particles, f"{what} flow")
    _assert_particles_equal(
        a.reservoir.particles, b.reservoir.particles, f"{what} reservoir"
    )
    assert a.step_count == b.step_count
    assert a.boundaries.plunger.position == b.boundaries.plunger.position


class TestOneWorkerIdentity:
    def test_bitwise_identical_to_serial_default_config(self):
        """Acceptance: 50 steps of the paper's default wedge config."""
        serial = Simulation(SimulationConfig())
        sharded = Simulation(SimulationConfig(), backend=ShardedBackend(1))
        try:
            serial.run(40)
            sharded.run(40)
            serial.run(10, sample=True)
            sharded.run(10, sample=True)
            sharded.gather()
            _assert_sims_equal(serial, sharded, "n_workers=1")
            assert np.array_equal(serial.sampler._count, sharded.sampler._count)
            assert np.array_equal(serial.sampler._mu, sharded.sampler._mu)
        finally:
            sharded.close()


class TestProcessInlineEquivalence:
    def test_process_workers_match_inline(self):
        """Real fork+shared-memory workers vs the in-process mode."""
        proc = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=True)
        )
        inline = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=False)
        )
        try:
            proc.run(4)
            inline.run(4)
            proc.run(3, sample=True)
            inline.run(3, sample=True)
            proc.gather()
            inline.gather()
            _assert_sims_equal(proc, inline, "process vs inline")
            assert proc.backend.pending_flux == inline.backend.pending_flux
            assert np.array_equal(proc.sampler._count, inline.sampler._count)
            assert np.array_equal(proc.sampler._mu, inline.sampler._mu)
        finally:
            proc.close()
            inline.close()


class TestReproducibility:
    def test_four_workers_run_to_run_bitwise(self):
        runs = []
        for _ in range(2):
            sim = Simulation(
                _small_config(), backend=ShardedBackend(4, processes=False)
            )
            try:
                sim.run(8, sample=True)
                sim.gather()
                runs.append(
                    {
                        c: getattr(sim.particles, c).copy()
                        for c in PARTICLE_COLUMNS
                    }
                )
            finally:
                sim.close()
        for col in PARTICLE_COLUMNS:
            assert np.array_equal(runs[0][col], runs[1][col]), col


class TestShardedSnapshots:
    def test_save_restore_continues_bitwise(self, tmp_path):
        path = tmp_path / "sharded.npz"

        reference = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=False)
        )
        saved = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=False)
        )
        try:
            reference.run(5)
            saved.run(5)
            save_simulation(saved, path)

            reference.run(4, sample=True)
            restored = load_simulation(path, processes=False)
            assert restored.backend.n_workers == 2
            try:
                restored.run(4, sample=True)
                reference.gather()
                restored.gather()
                _assert_sims_equal(reference, restored, "snapshot restore")
                assert np.array_equal(
                    reference.sampler._count, restored.sampler._count
                )
                if reference.surface is not None:
                    # Restart changes the association order of the
                    # impulse sums (saved partial + new vs one running
                    # sum); identical to 1 ulp, not bitwise.
                    assert np.allclose(
                        reference.surface._impulse_x,
                        restored.surface._impulse_x,
                        rtol=1e-12,
                        atol=0.0,
                    )
                    assert np.array_equal(
                        reference.surface._hits, restored.surface._hits
                    )
            finally:
                restored.close()
        finally:
            reference.close()
            saved.close()

    def test_restore_to_serial_engine(self, tmp_path):
        """``workers=1`` override detaches the sharded backend."""
        path = tmp_path / "sharded.npz"
        sim = Simulation(
            _small_config(), backend=ShardedBackend(2, processes=False)
        )
        try:
            sim.run(3)
            save_simulation(sim, path)
        finally:
            sim.close()
        restored = load_simulation(path, workers=1)
        assert restored.backend is None or not isinstance(
            restored.backend, ShardedBackend
        )
        restored.run(2)  # must step fine on the serial engine
        restored.close()
