"""The paper's contribution: the fine-grained parallel DSMC algorithm.

One time step comprises four sub-steps (paper, "Description of
Algorithm"):

1. collisionless motion of particles      (:mod:`~repro.core.motion`)
2. enforcement of boundary conditions     (:mod:`~repro.core.boundary`)
3. selection of collision partners        (:mod:`~repro.core.cells`,
   :mod:`~repro.core.sortstep`, :mod:`~repro.core.pairing`,
   :mod:`~repro.core.selection`)
4. collision of selected partners         (:mod:`~repro.core.collision`,
   :mod:`~repro.core.permutation`)

:mod:`~repro.core.simulation` assembles them into the wind-tunnel driver
with the reservoir (:mod:`~repro.core.reservoir`) and macroscopic
sampling (:mod:`~repro.core.sampling`).  Two engines execute the same
algorithm: the float64 NumPy reference engine
(:mod:`~repro.core.engine_numpy`) and the fixed-point CM-2 emulation
engine with cost accounting (:mod:`~repro.core.engine_cm`).
"""

from repro.core.particles import ParticleArrays
from repro.core.simulation import Simulation, SimulationConfig, StepDiagnostics
from repro.core.simulation3d import Simulation3D, Simulation3DConfig
from repro.core.surface import SurfaceSampler
from repro.core.history import RunHistory, run_with_history

__all__ = [
    "ParticleArrays",
    "Simulation",
    "SimulationConfig",
    "StepDiagnostics",
    "Simulation3D",
    "Simulation3DConfig",
    "SurfaceSampler",
    "RunHistory",
    "run_with_history",
]
