"""The collision algorithm (sub-step 4; eqs. (9)-(18) of the paper).

The outcome of a collision of two perfect diatomic molecules is "for
each particle, a new velocity and internal energy subject to the
constraints of conservation of linear momentum and energy".  Rotational
energy is carried by a rotational velocity vector r with
``E_rot = 1/2 m r.r`` (eq. (9)); a diatomic r has two components.

**The five values.**  "One begins by computing the relative and mean
pre-collision velocity components for each collision partner"
(eqs. (12)-(15)).  With m1 = m2 = m define, per component,

    mean:           W  = (c1 + c2) / 2       (3 translational)
                    S  = (r1 + r2) / 2       (2 rotational)
    half-relative:  h  = (c1 - c2) / 2       (3 translational)
                    hq = (r1 - r2) / 2       (2 rotational)

Momentum conservation fixes W' = W (eq. (14)-(15)); the paper's
assumption (eqs. (16)-(17)) additionally carries the rotational mean S
through the collision unchanged.  Substituting into energy conservation
(eqs. (10)-(11)) collapses both constraints into the single equation
(18):

    |h'|^2 + |hq'|^2 = |h|^2 + |hq|^2

i.e. the *norm of the five-element half-relative vector is conserved*,
and "any post-collision values that satisfy (18) are valid".  The
implementation uses exactly the paper's choice: re-order the five
pre-collision values by the particle's permutation vector and give every
element a random, equally probable sign; then "for the first particle
the new relative velocity is added to the mean velocity and for the
second particle the relative velocity is subtracted from the mean
velocity":

    c1' = W + h'[0:3]    c2' = W - h'[0:3]
    r1' = S + h'[3:5]    r2' = S - h'[3:5]

Momentum and energy are conserved *exactly* (to rounding), and repeated
collisions equidistribute energy over all five degrees of freedom --
the stationary state satisfies classical equipartition (<c_x'^2> =
<r_j^2>), which the property tests verify.

This module is the float64 reference; the CM engine re-implements the
same arithmetic in Q8.23 fixed point where the divisions by two above
are exactly the truncation hazard the paper's stochastic rounding fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.particles import ParticleArrays
from repro.core.permutation import apply_permutation
from repro.errors import ConfigurationError
from repro.rng import random_signs


@dataclass(frozen=True)
class CollisionStats:
    """Bookkeeping from one collision sub-step."""

    n_collisions: int
    energy_exchanged: float  # |translational energy change| summed over pairs


def collide_pairs(
    particles: ParticleArrays,
    first: np.ndarray,
    second: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    signs: Optional[np.ndarray] = None,
    transpositions: Optional[np.ndarray] = None,
    internal_exchange_probability: float = 1.0,
) -> CollisionStats:
    """Collide the given (first[i], second[i]) pairs, in place.

    Parameters
    ----------
    particles:
        The population (velocities, rotational state and permutation
        vectors are updated in place).
    first, second:
        Sorted addresses of the colliding pairs (the accepted candidate
        pairs from the selection rule).
    rng:
        Source for the random signs and the permutation-refresh
        transpositions when they are not supplied explicitly.
    signs:
        Optional ``(n_pairs, k)`` array of +-1 (the CM engine feeds
        quick-and-dirty bits here).
    transpositions:
        Optional ``(2 * n_pairs,)`` swap indices for refreshing first
        then second partners' permutation vectors.
    internal_exchange_probability:
        The Future-Work relaxation knob (see
        :class:`repro.physics.molecules.MolecularModel`): with this
        probability a pair's internal components join the five-element
        shuffle; otherwise only the three translational half-relative
        components are re-ordered among themselves (drawn from ``rng``;
        energy and momentum are conserved either way).  1.0 (default)
        is the paper's fully mixing model.

    Returns per-step collision statistics.
    """
    a = np.asarray(first)
    b = np.asarray(second)
    if a.shape != b.shape:
        raise ConfigurationError("first/second shapes differ")
    n = a.shape[0]
    k = 3 + particles.rotational_dof
    if n == 0:
        return CollisionStats(n_collisions=0, energy_exchanged=0.0)

    # Means (conserved) and half-relatives (eqs. (12)-(15)).
    wu = 0.5 * (particles.u[a] + particles.u[b])
    wv = 0.5 * (particles.v[a] + particles.v[b])
    ww = 0.5 * (particles.w[a] + particles.w[b])
    smean = 0.5 * (particles.rot[a] + particles.rot[b])

    h = np.empty((n, k))
    h[:, 0] = 0.5 * (particles.u[a] - particles.u[b])
    h[:, 1] = 0.5 * (particles.v[a] - particles.v[b])
    h[:, 2] = 0.5 * (particles.w[a] - particles.w[b])
    h[:, 3:] = 0.5 * (particles.rot[a] - particles.rot[b])

    # Re-order by the first partner's permutation vector ("which one
    # gets used is inconsequential") and apply random signs.
    h_new = apply_permutation(h, particles.perm[a])
    if signs is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit signs")
        signs = random_signs(rng, (n, k))
    else:
        signs = np.asarray(signs)
        if signs.shape != (n, k):
            raise ConfigurationError(f"signs must have shape {(n, k)}")
    h_new = h_new * signs

    if internal_exchange_probability < 1.0:
        if rng is None:
            raise ConfigurationError(
                "internal_exchange_probability < 1 requires rng"
            )
        frozen = rng.random(n) >= internal_exchange_probability
        if np.any(frozen):
            nf = int(np.count_nonzero(frozen))
            # Translational-only outcome: permute the 3 translational
            # half-relatives among themselves (uniform 3-permutation),
            # apply fresh signs, keep internal components untouched.
            trans_perm = np.argsort(rng.random((nf, 3)), axis=1)
            rows = np.arange(nf)[:, None]
            h_trans = h[frozen][:, :3][rows, trans_perm]
            h_trans *= random_signs(rng, (nf, 3))
            h_new[frozen, :3] = h_trans
            h_new[frozen, 3:] = h[frozen, 3:]

    e_trans_before = h[:, 0] ** 2 + h[:, 1] ** 2 + h[:, 2] ** 2

    # Reconstruct post-collision states (momentum: mean +- relative).
    particles.u[a] = wu + h_new[:, 0]
    particles.u[b] = wu - h_new[:, 0]
    particles.v[a] = wv + h_new[:, 1]
    particles.v[b] = wv - h_new[:, 1]
    particles.w[a] = ww + h_new[:, 2]
    particles.w[b] = ww - h_new[:, 2]
    particles.rot[a] = smean + h_new[:, 3:]
    particles.rot[b] = smean - h_new[:, 3:]

    e_trans_after = h_new[:, 0] ** 2 + h_new[:, 1] ** 2 + h_new[:, 2] ** 2

    # Refresh both partners' permutation vectors with one random
    # transposition each (the Aldous-Diaconis shuffle step).
    if transpositions is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit transpositions")
        transpositions = rng.integers(0, k, size=2 * n)
    else:
        transpositions = np.asarray(transpositions)
        if transpositions.shape != (2 * n,):
            raise ConfigurationError("need 2 * n_pairs transposition draws")
    _transpose_rows(particles.perm, a, transpositions[:n])
    _transpose_rows(particles.perm, b, transpositions[n:])

    return CollisionStats(
        n_collisions=n,
        energy_exchanged=float(np.abs(e_trans_after - e_trans_before).sum()),
    )


def _transpose_rows(perm: np.ndarray, rows: np.ndarray, js: np.ndarray) -> None:
    """Swap element js[i] with element 0 in perm[rows[i]], vectorized.

    ``rows`` may repeat only if the repeats carry identical swaps; the
    collision pairing guarantees disjoint rows within each call.
    """
    tmp = perm[rows, js].copy()
    perm[rows, js] = perm[rows, 0]
    perm[rows, 0] = tmp
