"""Orchestrator behaviour: dispatch, cache, backpressure, cancel, drain."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobStateError,
    ServiceError,
)
from repro.service import Orchestrator, OrchestratorConfig
from repro.service import store as st
from tests.service.conftest import fast_config, wait_terminal

pytestmark = pytest.mark.service


class TestConfig:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            OrchestratorConfig(workers=0)
        with pytest.raises(ConfigurationError):
            OrchestratorConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            OrchestratorConfig(max_job_retries=-1)

    def test_submit_needs_exactly_one_spec_source(self, orchestrator):
        with pytest.raises(ConfigurationError, match="exactly one"):
            orchestrator.submit()
        with pytest.raises(ConfigurationError, match="exactly one"):
            orchestrator.submit(scenario="wedge", spec={"name": "x"})

    def test_unknown_override_keys_rejected(self, orchestrator):
        with pytest.raises(ConfigurationError, match="bogus"):
            orchestrator.submit(scenario="wedge", overrides={"bogus": 1})


class TestLifecycle:
    def test_job_runs_to_done_and_caches(
        self, orchestrator, tiny_overrides
    ):
        out = orchestrator.submit(
            scenario="wedge", seed=11, overrides=tiny_overrides
        )
        assert out["state"] == st.QUEUED and out["cached"] is False
        status = wait_terminal(orchestrator, out["job_id"])
        assert status["state"] == st.DONE
        assert status["attempt"] == 1
        result = orchestrator.result(out["job_id"])
        assert result["steps"] == tiny_overrides["average"]
        assert len(result["density_sha256"]) == 64

        # Duplicate submission: same (digest, seed, overrides,
        # schedule) returns the original job without stepping the
        # engine -- instantly, and without a new job record.
        t0 = time.time()
        again = orchestrator.submit(
            scenario="wedge", seed=11, overrides=tiny_overrides
        )
        assert time.time() - t0 < 0.5
        assert again == {
            "job_id": out["job_id"], "state": st.DONE, "cached": True,
        }
        assert len(orchestrator.store.jobs) == 1

    def test_seed_changes_miss_the_cache(
        self, orchestrator, tiny_overrides
    ):
        a = orchestrator.submit(
            scenario="wedge", seed=1, overrides=tiny_overrides
        )
        b = orchestrator.submit(
            scenario="wedge", seed=2, overrides=tiny_overrides
        )
        assert a["job_id"] != b["job_id"]
        assert wait_terminal(orchestrator, a["job_id"])["state"] == st.DONE
        assert wait_terminal(orchestrator, b["job_id"])["state"] == st.DONE
        ra = orchestrator.result(a["job_id"])
        rb = orchestrator.result(b["job_id"])
        assert ra["density_sha256"] != rb["density_sha256"]

    def test_result_before_done_raises(self, tmp_path, tiny_overrides):
        orch = Orchestrator(tmp_path, fast_config(), start=False)
        out = orch.submit(
            scenario="wedge", seed=3, overrides=tiny_overrides
        )
        with pytest.raises(JobStateError, match="no result"):
            orch.result(out["job_id"])
        orch.shutdown()


class TestBackpressure:
    def test_full_queue_rejects_with_429_semantics(
        self, tmp_path, tiny_overrides
    ):
        # Scheduler never started: everything stays QUEUED.
        orch = Orchestrator(
            tmp_path, fast_config(queue_limit=2), start=False
        )
        for seed in (1, 2):
            orch.submit(
                scenario="wedge", seed=seed, overrides=tiny_overrides
            )
        with pytest.raises(BackpressureError) as err:
            orch.submit(
                scenario="wedge", seed=3, overrides=tiny_overrides
            )
        assert err.value.context["queue_depth"] == 2
        assert err.value.context["limit"] == 2
        # The rejection is journaled and counted.
        assert orch._m_backpressure.value == 1
        orch.shutdown()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path, tiny_overrides):
        orch = Orchestrator(tmp_path, fast_config(), start=False)
        out = orch.submit(
            scenario="wedge", seed=5, overrides=tiny_overrides
        )
        status = orch.cancel(out["job_id"])
        assert status["state"] == st.CANCELLED
        with pytest.raises(JobStateError, match="terminal"):
            orch.cancel(out["job_id"])
        orch.shutdown()

    def test_cancel_running_job_drains(self, tmp_path):
        orch = Orchestrator(tmp_path, fast_config(workers=1))
        out = orch.submit(
            scenario="wedge",
            seed=6,
            overrides={
                "nx": 32, "ny": 16, "density": 6.0,
                "transient": 0, "average": 4000,
            },
        )
        deadline = time.time() + 30
        while orch.status(out["job_id"])["state"] != st.RUNNING:
            assert time.time() < deadline
            time.sleep(0.02)
        orch.cancel(out["job_id"])
        status = wait_terminal(orch, out["job_id"], timeout=60)
        assert status["state"] == st.CANCELLED
        orch.shutdown()


class TestShutdown:
    def test_shutdown_rejects_new_submissions(
        self, tmp_path, tiny_overrides
    ):
        orch = Orchestrator(tmp_path, fast_config())
        orch.shutdown()
        with pytest.raises(ServiceError):
            orch.submit(
                scenario="wedge", seed=1, overrides=tiny_overrides
            )

    def test_drain_requeues_and_restart_finishes(self, tmp_path):
        overrides = {
            "nx": 32, "ny": 16, "density": 6.0,
            "transient": 0, "average": 600,
        }
        orch = Orchestrator(tmp_path, fast_config(workers=1))
        out = orch.submit(scenario="wedge", seed=8, overrides=overrides)
        deadline = time.time() + 30
        while orch.status(out["job_id"])["state"] != st.RUNNING:
            assert time.time() < deadline
            time.sleep(0.02)
        time.sleep(0.3)  # let it cross a checkpoint or two
        summary = orch.shutdown(drain=True)
        assert summary["drained"] + summary["completed"] == 1
        # The journal records the drain; a restarted orchestrator
        # resumes the job from its checkpoint and finishes it.
        orch2 = Orchestrator(tmp_path, fast_config(workers=1))
        status = wait_terminal(orch2, out["job_id"], timeout=120)
        assert status["state"] == st.DONE
        result = orch2.result(out["job_id"])
        assert result["steps"] == 600
        orch2.shutdown()


class TestMetrics:
    def test_prometheus_snapshot_written(
        self, tmp_path, tiny_overrides
    ):
        orch = Orchestrator(tmp_path, fast_config())
        out = orch.submit(
            scenario="wedge", seed=9, overrides=tiny_overrides
        )
        wait_terminal(orch, out["job_id"])
        orch.shutdown()
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_service_submissions_total 1" in prom
        assert 'repro_service_jobs{state="DONE"} 1' in prom
