"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

The paper's headline results are metrics -- 7.2 us/particle/step split
14/27/20/39 -- so the registry is built around exactly that shape of
data: monotonically increasing event totals (collisions, migrations,
recoveries), instantaneous levels with high-water tracking (particle
counts, exchange occupancy, load imbalance), and fixed-bucket
histograms for the us/particle/step distribution so a run's timing
profile survives aggregation without storing every step.

Everything here is plain in-process Python (dict updates and a bisect
per observation); the per-step cost is microseconds against step
kernels that run hundreds of milliseconds, which is how the telemetry
subsystem stays inside its <3% overhead budget.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Fixed bucket upper bounds (microseconds per particle per step) for
#: the step-time histogram.  The paper's CM-2 anchor sits at 7.2; the
#: NumPy hot path on a modern core lands around 1-2, so the buckets
#: bracket both with headroom for degraded (serial-fallback) steps.
US_PER_PARTICLE_BUCKETS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-dict view (JSON-serializable)."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """An instantaneous level, with its high-water mark tracked."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.high_water = float("-inf")

    def set(self, value: float) -> None:
        """Set the level, updating the high-water mark."""
        self.value = float(value)
        if self.value > self.high_water:
            self.high_water = self.value

    def snapshot(self) -> dict:
        """Plain-dict view (JSON-serializable)."""
        out = {"kind": self.kind, "value": self.value}
        if self.high_water != float("-inf"):
            out["high_water"] = self.high_water
        return out


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style).

    ``buckets`` are the finite upper bounds; an implicit ``+inf``
    bucket catches the tail.  ``observe`` is one ``bisect`` plus two
    adds -- cheap enough to run every step.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = US_PER_PARTICLE_BUCKETS,
        help: str = "",
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} needs sorted, non-empty buckets"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket and the sum/count totals."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        """Mean of every observed value (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain-dict view (JSON-serializable)."""
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Name -> metric map with Prometheus text exposition.

    Metrics are created on first use (``counter``/``gauge``/
    ``histogram`` are get-or-create) and optionally carry labels;
    the same metric name with different label sets becomes separate
    series under one family, exactly as Prometheus models it.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}
        self._help: Dict[str, str] = {}

    # -- get-or-create ---------------------------------------------------

    def _get(self, cls, name, labels, **kwargs):
        key = (name, _labelkey(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[key] = metric
            if kwargs.get("help"):
                self._help.setdefault(name, kwargs["help"])
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Counter:
        """Get or create the counter ``name`` (optionally labeled)."""
        return self._get(Counter, name, labels, help=help)

    def gauge(
        self, name: str, labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        """Get or create the gauge ``name`` (optionally labeled)."""
        return self._get(Gauge, name, labels, help=help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = US_PER_PARTICLE_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name`` (optionally labeled)."""
        return self._get(Histogram, name, labels, buckets=buckets, help=help)

    def drop(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> bool:
        """Remove one series (if present); returns whether it existed.

        Labeled per-job series must be retired when the job leaves the
        fleet -- a long-lived service would otherwise grow one gauge
        set per job ever submitted and its ``/metrics`` page without
        bound.
        """
        return self._metrics.pop((name, _labelkey(labels)), None) is not None

    # -- reading ---------------------------------------------------------

    def families(self) -> Iterable[Tuple[str, LabelPairs, object]]:
        """Yield ``(name, labels, metric)`` sorted by name then labels."""
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            yield name, labels, metric

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every series (JSON-serializable)."""
        out: Dict[str, object] = {}
        for name, labels, metric in self.families():
            key = name if not labels else (
                name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            )
            out[key] = metric.snapshot()
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the registry."""
        lines = []
        seen_header = set()
        for name, labels, metric in self.families():
            if name not in seen_header:
                seen_header.add(name)
                if self._help.get(name):
                    lines.append(f"# HELP {name} {self._help[name]}")
                lines.append(f"# TYPE {name} {metric.kind}")
            lab = (
                "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"
                if labels
                else ""
            )
            if isinstance(metric, Histogram):
                cum = 0
                for bound, c in zip(metric.buckets, metric.counts):
                    cum += c
                    blab = _merge_label(lab, f'le="{bound:g}"')
                    lines.append(f"{name}_bucket{blab} {cum}")
                cum += metric.counts[-1]
                blab = _merge_label(lab, 'le="+Inf"')
                lines.append(f"{name}_bucket{blab} {cum}")
                lines.append(f"{name}_sum{lab} {metric.sum:.9g}")
                lines.append(f"{name}_count{lab} {metric.count}")
            else:
                lines.append(f"{name}{lab} {metric.value:.9g}")
        return "\n".join(lines) + "\n"


def _merge_label(existing: str, extra: str) -> str:
    if not existing:
        return "{" + extra + "}"
    return existing[:-1] + "," + extra + "}"
