"""Gas physics substrate: molecules, distributions, freestream, theory.

* :mod:`~repro.physics.molecules` -- inverse-power-law molecular models
  (Maxwell molecules are the paper's special case alpha = 4);
* :mod:`~repro.physics.distributions` -- Maxwellian and rectangular
  velocity samplers and distribution diagnostics;
* :mod:`~repro.physics.freestream` -- the normalized freestream state
  (Mach number, thermal speed scale, mean free path in cell widths) and
  derived dimensionless groups (Knudsen, Reynolds);
* :mod:`~repro.physics.theory` -- the inviscid 2-D theory the paper
  validates against: oblique-shock (theta-beta-M), Rankine-Hugoniot
  jumps, Prandtl-Meyer expansion and shock-thickness scales.
"""

from repro.physics.molecules import MolecularModel, maxwell_molecule, hard_sphere
from repro.physics.freestream import Freestream
from repro.physics import distributions, theory

__all__ = [
    "MolecularModel",
    "maxwell_molecule",
    "hard_sphere",
    "Freestream",
    "distributions",
    "theory",
]
