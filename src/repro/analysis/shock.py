"""Shock metrology: the quantitative reads of figures 1-6.

The paper validates four numbers against 2-D inviscid theory:

* the **shock angle** (45 degrees for Mach 4 / 30 degree wedge),
* the **post-shock density ratio** (Rankine-Hugoniot: 3.7),
* the **Prandtl-Meyer expansion** around the wedge corner,
* the **shock thickness** (3 cell widths near-continuum, 5 rarefied)
  and the **wake shock** that is "completely washed out" in the
  rarefied run.

All functions operate on a time-averaged density-ratio field
``rho[(nx, ny)]`` (density / freestream density) plus the geometry that
produced it, and return plain floats so benches and tests can assert on
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge


@dataclass(frozen=True)
class ShockFit:
    """Least-squares fit of the shock front above the ramp.

    Attributes
    ----------
    angle_deg:
        Shock angle from the horizontal (the oblique shock's beta).
    intercept:
        Fitted y at the leading-edge x (near 0 for an attached shock).
    xs, ys:
        The per-column crossing points used in the fit (diagnostics).
    """

    angle_deg: float
    intercept: float
    xs: np.ndarray
    ys: np.ndarray


def _column_crossing(
    col: np.ndarray, level: float, y_start: int
) -> Optional[float]:
    """First y (sub-cell, linear interp) where ``col`` falls below level.

    Scans upward from ``y_start`` (just above the wedge surface) where
    the column sits at post-shock density, to the freestream above: the
    crossing of ``level`` locates the shock front in this column.
    """
    above = col[y_start:]
    below_mask = above < level
    if not below_mask.any() or below_mask.all():
        return None
    j = int(np.argmax(below_mask))  # first index below the level
    if j == 0:
        return None
    y1, y0 = above[j], above[j - 1]
    if y0 == y1:
        frac = 0.0
    else:
        frac = (y0 - level) / (y0 - y1)
    return float(y_start + j - 1 + frac + 0.5)  # cell centers at +0.5


def shock_crossings(
    rho: np.ndarray,
    wedge: Wedge,
    level: Optional[float] = None,
    post_shock_ratio: float = 3.7,
    x_margin: float = 3.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Locate the shock front above the ramp, column by column.

    ``level`` defaults to the midpoint between freestream (1) and the
    theoretical post-shock ratio.  Columns within ``x_margin`` cells of
    the leading edge or corner are skipped (leading-edge curvature and
    corner-expansion contamination).

    Returns ``(xs, ys)`` arrays of crossing points (cell-center
    coordinates).
    """
    if rho.ndim != 2:
        raise ConfigurationError("rho must be a 2-D (nx, ny) field")
    if level is None:
        level = 0.5 * (1.0 + post_shock_ratio)
    i_lo = int(math.ceil(wedge.x_leading + x_margin))
    i_hi = int(math.floor(wedge.x_trailing - x_margin))
    xs, ys = [], []
    for i in range(i_lo, min(i_hi, rho.shape[0] - 1) + 1):
        surf = wedge.ramp_height_at(i + 0.5)
        y_start = int(math.ceil(surf)) + 1
        if y_start >= rho.shape[1] - 2:
            continue
        y = _column_crossing(rho[i], level, y_start)
        if y is not None:
            xs.append(i + 0.5)
            ys.append(y)
    return np.asarray(xs), np.asarray(ys)


def fit_shock_angle(
    rho: np.ndarray,
    wedge: Wedge,
    level: Optional[float] = None,
    post_shock_ratio: float = 3.7,
) -> ShockFit:
    """Fit a straight shock front and return its angle (figure 1's 45 deg).

    The fit is a least-squares line through the per-column crossing
    points, with the angle measured from the freestream direction.
    """
    xs, ys = shock_crossings(rho, wedge, level, post_shock_ratio)
    if xs.size < 4:
        raise ConfigurationError(
            f"only {xs.size} shock crossings found; field not converged "
            "or geometry mismatch"
        )
    slope, intercept = np.polyfit(xs - wedge.x_leading, ys, 1)
    return ShockFit(
        angle_deg=math.degrees(math.atan(slope)),
        intercept=float(intercept),
        xs=xs,
        ys=ys,
    )


def post_shock_plateau(
    rho: np.ndarray,
    wedge: Wedge,
    fit: Optional[ShockFit] = None,
    surface_clearance: float = 2.0,
    shock_clearance: float = 2.0,
) -> float:
    """Mean density ratio in the shock layer (Rankine-Hugoniot's 3.7).

    Averages the field between the ramp surface and the fitted shock
    front, keeping ``surface_clearance`` cells off the wedge (cut-cell
    noise) and ``shock_clearance`` cells under the front (finite shock
    width).  On small (scaled) geometries where the layer is only a few
    cells thick, the clearances are progressively halved until usable
    samples exist.
    """
    if fit is None:
        fit = fit_shock_angle(rho, wedge)
    slope = math.tan(math.radians(fit.angle_deg))
    sc, kc = surface_clearance, shock_clearance
    for _ in range(4):
        vals = []
        for x, _y in zip(fit.xs, fit.ys):
            i = int(x)
            surf = wedge.ramp_height_at(x)
            y_front = fit.intercept + slope * (x - wedge.x_leading)
            lo = surf + sc
            hi = y_front - kc
            j_lo, j_hi = int(math.ceil(lo)), int(math.floor(hi))
            if j_hi > j_lo:
                vals.append(rho[i, j_lo:j_hi].mean())
        if vals:
            return float(np.mean(vals))
        sc, kc = sc / 2.0, kc / 2.0
    raise ConfigurationError("no usable shock-layer samples")


def shock_thickness(
    rho: np.ndarray,
    wedge: Wedge,
    fit: Optional[ShockFit] = None,
    lo_frac: float = 0.15,
    hi_frac: float = 0.85,
    plateau: Optional[float] = None,
) -> float:
    """Shock thickness in cell widths, normal to the front.

    For each usable column, measures the vertical distance between the
    ``lo_frac`` and ``hi_frac`` points of the density rise (between 1
    and the plateau), then projects onto the shock normal
    (``dy * cos(beta)``).  The paper reads 3 cell widths off figure 1
    (near-continuum; resolution-limited) and 5 off figure 4 (rarefied).
    """
    if fit is None:
        fit = fit_shock_angle(rho, wedge)
    if plateau is None:
        plateau = post_shock_plateau(rho, wedge, fit)
    lo_level = 1.0 + lo_frac * (plateau - 1.0)
    hi_level = 1.0 + hi_frac * (plateau - 1.0)
    beta = math.radians(fit.angle_deg)
    widths = []
    for x in fit.xs:
        i = int(x)
        surf = wedge.ramp_height_at(x)
        y_start = int(math.ceil(surf)) + 1
        y_hi = _column_crossing(rho[i], hi_level, y_start)
        y_lo = _column_crossing(rho[i], lo_level, y_start)
        if y_hi is not None and y_lo is not None and y_lo > y_hi:
            widths.append((y_lo - y_hi) * math.cos(beta))
    if not widths:
        raise ConfigurationError("no measurable shock-rise columns")
    return float(np.median(widths))


def wake_recompression_factor(
    rho: np.ndarray,
    wedge: Wedge,
    domain: Domain,
    floor_band: float = 3.0,
    x_clearance: float = 3.0,
) -> float:
    """Wake-shock strength behind the wedge.

    In the near-continuum run the corner-expanded flow recompresses
    where it meets the floor ("the fully developed wake shock"); in the
    rarefied run the wake shock is "completely washed out".  Metric:
    along the floor band behind the back face, the maximum density
    divided by the minimum upstream of it (the expansion trough).  Near
    continuum this is >> 1; rarefied it approaches 1.
    """
    i_lo = int(wedge.x_trailing + x_clearance)
    i_hi = domain.nx - 2
    if i_hi <= i_lo + 3:
        raise ConfigurationError("domain too short behind the wedge")
    j_hi = int(floor_band)
    band = rho[i_lo:i_hi, 0:j_hi].mean(axis=1)
    trough_i = int(np.argmin(band))
    trough = float(band[trough_i])
    if trough_i >= band.size - 1:
        return 1.0
    peak = float(band[trough_i:].max())
    if trough <= 0:
        raise ConfigurationError("empty wake band; field not converged")
    return peak / trough


def expansion_fan_samples(
    rho: np.ndarray,
    wedge: Wedge,
    turns_deg,
    mach_post_shock: float,
    plateau: float,
    radius: float = 10.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the corner expansion fan along theoretical characteristics.

    For each turn angle, computes the Prandtl-Meyer characteristic ray
    through the corner (incoming flow parallel to the ramp at the
    post-shock Mach number) and samples the density at ``radius`` cells
    from the corner along that ray.

    Returns ``(measured, predicted)`` density ratios *relative to the
    pre-fan (post-shock) plateau*, aligned with ``turns_deg``.  The FIG1
    bench compares them pointwise -- the quantitative version of the
    paper's "Prandtl-Meyer expansion fan ... compared to theory and
    found to be correct".
    """
    from repro.physics import theory

    if plateau <= 0:
        raise ConfigurationError("plateau must be positive")
    cx, cy = wedge.corner
    flow_dir = wedge.angle
    measured, predicted = [], []
    for t in np.atleast_1d(turns_deg):
        ray, _m2, ratio = theory.expansion_fan_ray(
            mach_post_shock, math.radians(float(t)), flow_dir
        )
        px = cx + radius * math.cos(ray)
        py = cy + radius * math.sin(ray)
        i = int(np.clip(px, 0, rho.shape[0] - 1))
        j = int(np.clip(py, 0, rho.shape[1] - 1))
        measured.append(float(rho[i, j]) / plateau)
        predicted.append(ratio)
    return np.asarray(measured), np.asarray(predicted)


def vertical_rise_width(
    rho: np.ndarray,
    wedge: Wedge,
    x_station: float,
    plateau: Optional[float] = None,
    lo_frac: float = 0.15,
    hi_frac: float = 0.85,
) -> float:
    """Vertical width of the density rise through the shock at one station.

    The figure 3 / figure 6 comparison localized to a single column:
    scanning upward from the ramp surface at ``x_station``, the distance
    between the ``hi_frac`` and ``lo_frac`` points of the fall from the
    plateau to the freestream.  Rarefied flow gives a wider rise than
    near-continuum flow at the same station.
    """
    i = int(x_station)
    if not 0 <= i < rho.shape[0]:
        raise ConfigurationError("x_station outside the field")
    if plateau is None:
        plateau = post_shock_plateau(rho, wedge)
    surf = wedge.ramp_height_at(x_station)
    y_start = int(math.ceil(surf)) + 1
    lo_level = 1.0 + lo_frac * (plateau - 1.0)
    hi_level = 1.0 + hi_frac * (plateau - 1.0)
    y_hi = _column_crossing(rho[i], hi_level, y_start)
    y_lo = _column_crossing(rho[i], lo_level, y_start)
    if y_hi is None or y_lo is None or y_lo <= y_hi:
        raise ConfigurationError(
            f"no measurable rise at station x = {x_station}"
        )
    return float(y_lo - y_hi)


def wake_floor_ridge(
    rho: np.ndarray,
    wedge: Wedge,
    domain: Domain,
    x_offset: float = 20.0,
    floor_band: float = 3.0,
) -> float:
    """Floor-attachment of the wake recompression layer.

    The wake shock forms "when the fluid which has expanded around the
    corner of the wedge meets the bottom surface of the wind tunnel":
    the recompressed gas piles up in a layer attached to the floor, so
    in the near-continuum solution the far-wake density *decreases* with
    height (ridge > 1).  In the rarefied solution the long mean free
    path diffuses the layer away ("the wake shock is completely washed
    out") and the ratio drops to or below 1.

    Returns mean(floor-band density) / mean(density at mid-wedge
    height) over the far wake (``x_offset`` cells behind the back face
    to the exit).
    """
    i_lo = int(wedge.x_trailing + x_offset)
    i_hi = domain.nx - 1
    if i_hi <= i_lo + 2:
        raise ConfigurationError("domain too short for the far-wake window")
    j_floor = max(int(floor_band), 1)
    j_mid_lo = int(wedge.height * 0.5)
    j_mid_hi = j_mid_lo + j_floor
    floor = rho[i_lo:i_hi, 0:j_floor].mean()
    mid = rho[i_lo:i_hi, j_mid_lo:j_mid_hi].mean()
    if mid <= 0:
        raise ConfigurationError("empty mid-wake band; field not converged")
    return float(floor / mid)


def expansion_density_drop(
    rho: np.ndarray,
    wedge: Wedge,
    domain: Domain,
    box: float = 4.0,
) -> float:
    """Density ratio across the corner expansion fan.

    Mean density in a box just downstream/below the corner (the expanded
    region) divided by the post-shock plateau upstream of the corner.
    Compared against the Prandtl-Meyer prediction for the turn back to
    the freestream direction ("The Prandtl-Meyer expansion fan around
    the corner of the wedge was also compared to theory and found to be
    correct").
    """
    cx, cy = wedge.corner
    i_lo, i_hi = int(cx + 1), min(int(cx + 1 + box), domain.nx - 1)
    j_lo, j_hi = max(int(cy - box), 0), max(int(cy - 1), 1)
    if i_hi <= i_lo or j_hi <= j_lo:
        raise ConfigurationError("expansion box is degenerate")
    expanded = float(rho[i_lo:i_hi, j_lo:j_hi].mean())
    plateau = post_shock_plateau(rho, wedge)
    if plateau <= 0:
        raise ConfigurationError("invalid plateau")
    return expanded / plateau
