"""Unit tests for the permutation-vector machinery."""

import numpy as np
import pytest

from repro.constants import PERMUTATION_REFRESH_TRANSPOSITIONS
from repro.core.permutation import (
    apply_permutation,
    initialize_permutations,
    permutation_correlation,
    random_transpose_inplace,
)
from repro.errors import ConfigurationError


class TestApplyPermutation:
    def test_reorders_rows(self):
        values = np.array([[10.0, 20.0, 30.0, 40.0, 50.0]])
        perm = np.array([[4, 3, 2, 1, 0]], dtype=np.int8)
        out = apply_permutation(values, perm)
        assert out[0].tolist() == [50.0, 40.0, 30.0, 20.0, 10.0]

    def test_identity(self, rng):
        values = rng.random((20, 5))
        perm = np.tile(np.arange(5, dtype=np.int8), (20, 1))
        assert np.array_equal(apply_permutation(values, perm), values)

    def test_preserves_multiset_per_row(self, rng):
        values = rng.random((50, 5))
        perm = initialize_permutations(rng, 50)
        out = apply_permutation(values, perm)
        assert np.allclose(np.sort(out, axis=1), np.sort(values, axis=1))

    def test_norm_preserved(self, rng):
        # The eq. (18) invariant under re-ordering.
        values = rng.normal(size=(100, 5))
        perm = initialize_permutations(rng, 100)
        out = apply_permutation(values, perm)
        assert np.allclose((out**2).sum(axis=1), (values**2).sum(axis=1))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            apply_permutation(np.zeros((3, 5)), np.zeros((3, 4), dtype=np.int8))


class TestTranspose:
    def test_swaps_with_first(self):
        perm = np.array([[0, 1, 2, 3, 4]], dtype=np.int8)
        random_transpose_inplace(perm, np.array([3]))
        assert perm[0].tolist() == [3, 1, 2, 0, 4]

    def test_identity_swap_allowed(self):
        perm = np.array([[2, 1, 0, 3, 4]], dtype=np.int8)
        random_transpose_inplace(perm, np.array([0]))
        assert perm[0].tolist() == [2, 1, 0, 3, 4]

    def test_mask_limits_rows(self):
        perm = np.tile(np.arange(5, dtype=np.int8), (3, 1))
        random_transpose_inplace(
            perm, np.array([4, 4, 4]), mask=np.array([True, False, True])
        )
        assert perm[0, 0] == 4
        assert perm[1, 0] == 0
        assert perm[2, 0] == 4

    def test_rows_remain_permutations(self, rng):
        perm = initialize_permutations(rng, 200)
        for _ in range(20):
            random_transpose_inplace(perm, rng.integers(0, 5, size=200))
        assert np.array_equal(
            np.sort(perm, axis=1),
            np.broadcast_to(np.arange(5, dtype=np.int8), (200, 5)),
        )

    def test_out_of_range_swap(self):
        perm = np.arange(5, dtype=np.int8)[None, :]
        with pytest.raises(ConfigurationError):
            random_transpose_inplace(perm, np.array([5]))

    def test_empty_population(self):
        perm = np.zeros((0, 5), dtype=np.int8)
        random_transpose_inplace(perm, np.zeros(0, dtype=np.int64))


class TestMixing:
    def test_aldous_diaconis_refresh(self, rng):
        # After ~n log n ~ 10 transpositions (one per collision, the
        # paper's rate over 10 collisions), the permutation should be
        # statistically fresh: fixed-position fraction ~ 1/5.
        n = 20_000
        perm = initialize_permutations(rng, n)
        before = perm.copy()
        for _ in range(2 * PERMUTATION_REFRESH_TRANSPOSITIONS):
            random_transpose_inplace(perm, rng.integers(0, 5, size=n))
        corr = permutation_correlation(before, perm)
        assert corr == pytest.approx(0.2, abs=0.02)

    def test_single_transposition_still_correlated(self, rng):
        # One transposition is NOT a fresh permutation (the paper leans
        # on partner randomization to compensate).
        n = 20_000
        perm = initialize_permutations(rng, n)
        before = perm.copy()
        random_transpose_inplace(perm, rng.integers(0, 5, size=n))
        assert permutation_correlation(before, perm) > 0.5

    def test_correlation_identity(self, rng):
        perm = initialize_permutations(rng, 100)
        assert permutation_correlation(perm, perm) == 1.0

    def test_correlation_validation(self):
        with pytest.raises(ConfigurationError):
            permutation_correlation(np.zeros((2, 5)), np.zeros((3, 5)))

    def test_correlation_empty(self):
        z = np.zeros((0, 5), dtype=np.int8)
        assert permutation_correlation(z, z) == 0.0
