"""Unit tests for the streaming layer: follower, tail, stitch, watch.

Pure filesystem tests -- no orchestrator, no HTTP.  The integration
behaviour (routes, SSE, live fleet) lives in
``tests/service/test_stream.py``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError, ServiceJournalError
from repro.service.watch import (
    JobView,
    fleet_lines,
    progress_bar,
    sparkline,
)
from repro.telemetry.stitch import (
    ORCH_SPANS_FILE,
    ORCHESTRATOR_PID,
    stitch_fleet_trace,
)
from repro.telemetry.stream import (
    JobEventTail,
    JsonlFollower,
    snapshot_records,
)
from repro.telemetry.spans import validate_trace


def _append(path, *records, torn: str = "") -> None:
    with open(path, "a", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
        if torn:
            fh.write(torn)


class TestSnapshotRecords:
    def test_missing_file_is_empty(self, tmp_path):
        assert snapshot_records(tmp_path / "nope.jsonl") == []

    def test_reads_complete_records(self, tmp_path):
        p = tmp_path / "s.jsonl"
        _append(p, {"kind": "a"}, {"kind": "b"})
        assert [r["kind"] for r in snapshot_records(p)] == ["a", "b"]

    def test_torn_tail_is_dropped(self, tmp_path):
        p = tmp_path / "s.jsonl"
        _append(p, {"kind": "a"}, torn='{"kind": "b", "x"')
        assert [r["kind"] for r in snapshot_records(p)] == ["a"]

    def test_midfile_garbage_raises_strict(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('{"kind": "a"}\nGARBAGE\n{"kind": "c"}\n')
        with pytest.raises(ServiceJournalError):
            snapshot_records(p)

    def test_midfile_garbage_skipped_lenient(self, tmp_path):
        p = tmp_path / "s.jsonl"
        p.write_text('{"kind": "a"}\nGARBAGE\n{"kind": "c"}\n')
        kinds = [r["kind"] for r in snapshot_records(p, strict=False)]
        assert kinds == ["a", "c"]


class TestJsonlFollower:
    def test_incremental_polls(self, tmp_path):
        p = tmp_path / "f.jsonl"
        f = JsonlFollower(p)
        assert f.poll() == []  # file does not exist yet
        _append(p, {"n": 1})
        assert [r["n"] for r in f.poll()] == [1]
        assert f.poll() == []
        _append(p, {"n": 2}, {"n": 3})
        assert [r["n"] for r in f.poll()] == [2, 3]

    def test_torn_line_held_until_complete(self, tmp_path):
        p = tmp_path / "f.jsonl"
        f = JsonlFollower(p)
        _append(p, {"n": 1}, torn='{"n": 2')
        assert [r["n"] for r in f.poll()] == [1]
        with open(p, "a") as fh:
            fh.write(', "ok": true}\n')
        assert [r["n"] for r in f.poll()] == [2]

    def test_cursor_resumes_in_fresh_follower(self, tmp_path):
        p = tmp_path / "f.jsonl"
        _append(p, {"n": 1}, {"n": 2})
        f1 = JsonlFollower(p)
        f1.poll()
        _append(p, {"n": 3})
        f2 = JsonlFollower(p, cursor=f1.cursor)  # e.g. across processes
        assert [r["n"] for r in f2.poll()] == [3]

    def test_rotation_resets_to_start(self, tmp_path):
        p = tmp_path / "f.jsonl"
        _append(p, {"n": 1}, {"n": 2})
        f = JsonlFollower(p)
        f.poll()
        p.write_text('{"n": 9}\n')  # truncate-and-rewrite
        assert [r["n"] for r in f.poll()] == [9]
        assert f.rotations == 1

    def test_bad_complete_line_counted_dropped(self, tmp_path):
        p = tmp_path / "f.jsonl"
        p.write_text('{"n": 1}\nnot json\n{"n": 2}\n')
        f = JsonlFollower(p)
        assert [r["n"] for r in f.poll()] == [1, 2]
        assert f.dropped == 1

    def test_per_record_cursors_are_gapless(self, tmp_path):
        p = tmp_path / "f.jsonl"
        _append(p, {"n": 1}, {"n": 2}, {"n": 3})
        pairs = JsonlFollower(p).poll_records()
        assert [r["n"] for r, _ in pairs] == [1, 2, 3]
        # Resuming from the cursor after record k yields k+1 onwards.
        _, after_first = pairs[0]
        rest = JsonlFollower(p, cursor=after_first).poll()
        assert [r["n"] for r in rest] == [2, 3]


class TestJobEventTail:
    def _job_dir(self, tmp_path):
        _append(
            tmp_path / "worker.jsonl",
            {"kind": "started", "time": 1.0},
            {"kind": "heartbeat", "step": 8, "time": 3.0},
        )
        _append(
            tmp_path / "events.jsonl",
            {"kind": "metrics", "step": 8, "time": 2.0},
            {"kind": "span", "name": "x", "ts": 0.0, "time": 2.5},
        )
        return tmp_path

    def test_merged_time_order_and_src(self, tmp_path):
        tail = JobEventTail(self._job_dir(tmp_path))
        recs = tail.poll()
        assert [r["kind"] for r in recs] == [
            "started", "metrics", "heartbeat",
        ]
        assert [r["src"] for r in recs] == [
            "worker", "telemetry", "worker",
        ]

    def test_spans_are_skipped(self, tmp_path):
        recs = JobEventTail(self._job_dir(tmp_path)).poll()
        assert all(r["kind"] != "span" for r in recs)

    def test_cursor_round_trip(self, tmp_path):
        job = self._job_dir(tmp_path)
        t1 = JobEventTail(job)
        t1.poll()
        _append(job / "worker.jsonl", {"kind": "done", "time": 4.0})
        t2 = JobEventTail(job, cursor=t1.cursor)
        assert [r["kind"] for r in t2.poll()] == ["done"]

    def test_per_record_cursor_resumes_mid_batch(self, tmp_path):
        job = self._job_dir(tmp_path)
        recs = JobEventTail(job).poll()
        # Drop the connection after the first record: resuming from its
        # cursor replays exactly the rest, no gap, no duplicate.
        resumed = JobEventTail(job, cursor=recs[0]["cursor"]).poll()
        assert [r["kind"] for r in resumed] == ["metrics", "heartbeat"]

    def test_malformed_cursor_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobEventTail(tmp_path, cursor="not-a-cursor")
        with pytest.raises(ConfigurationError):
            JobEventTail.decode_cursor("1:2:3")

    def test_empty_cursor_is_start(self):
        assert JobEventTail.decode_cursor(None) == (0, 0)
        assert JobEventTail.decode_cursor("") == (0, 0)


class TestStitch:
    def _fleet_dir(self, tmp_path):
        data = tmp_path / "svc"
        data.mkdir()
        _append(
            data / ORCH_SPANS_FILE,
            {"kind": "span", "name": "dispatch attempt 1", "ts": 10.0,
             "dur": 0.01, "tid": 0, "job_id": "job-a"},
            {"kind": "span", "name": "attempt 1 (exit 0)", "ts": 10.0,
             "dur": 2.0, "tid": 1, "job_id": "job-a"},
        )
        for i, job in enumerate(("job-a", "job-b")):
            jd = data / job
            jd.mkdir()
            _append(
                jd / "events.jsonl",
                {"kind": "metrics", "step": 1},  # non-span: ignored
                {"kind": "span", "name": "step", "ts": 10.5 + i,
                 "dur": 0.1, "step": 1, "tid": 0},
            )
        return data

    def test_stitched_trace_validates(self, tmp_path):
        data = self._fleet_dir(tmp_path)
        trace = stitch_fleet_trace(data)
        assert validate_trace(trace) == []
        assert (data / "fleet_trace.json").exists()

    def test_processes_are_distinct_tracks(self, tmp_path):
        trace = stitch_fleet_trace(self._fleet_dir(tmp_path))
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in xs}
        assert ORCHESTRATOR_PID in pids
        assert len(pids) == 3  # orchestrator + two jobs
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[ORCHESTRATOR_PID] == "orchestrator"
        assert set(names.values()) == {"orchestrator", "job-a", "job-b"}

    def test_timestamps_rebased_to_zero(self, tmp_path):
        trace = stitch_fleet_trace(self._fleet_dir(tmp_path))
        ts = [
            e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"
        ]
        assert min(ts) == 0.0
        assert all(t >= 0.0 for t in ts)

    def test_empty_dir_still_valid(self, tmp_path):
        data = tmp_path / "empty"
        data.mkdir()
        trace = stitch_fleet_trace(data)
        assert validate_trace(trace) == []

    def test_cli_exit_zero(self, tmp_path, capsys):
        from repro.telemetry.stitch import main

        data = self._fleet_dir(tmp_path)
        assert main([str(data)]) == 0
        assert "3 processes" in capsys.readouterr().out


class TestReportTolerance:
    def test_summarize_tolerates_torn_tail(self, tmp_path):
        from repro.telemetry.report import summarize

        _append(
            tmp_path / "events.jsonl",
            {"kind": "run_start", "workers": 1, "seed": 7},
            {"kind": "metrics", "step": 10, "n_flow": 100,
             "us_per_particle": 1.5},
            torn='{"kind": "metrics", "step": 20, "n_fl',
        )
        summary = summarize(tmp_path)
        assert summary["seed"] == 7
        assert summary["last_step"] == 10  # torn record not counted

    def test_diff_of_live_runs(self, tmp_path):
        from repro.telemetry.report import main

        for name in ("a", "b"):
            d = tmp_path / name
            d.mkdir()
            _append(
                d / "events.jsonl",
                {"kind": "run_start", "workers": 1, "seed": 1},
                {"kind": "metrics", "step": 5, "us_per_particle": 2.0},
                torn='{"kind": "metr',
            )
        rc = main([str(tmp_path / "a"), "--diff", str(tmp_path / "b")])
        assert rc == 0


class TestWatchRendering:
    def test_sparkline_shape(self):
        s = sparkline([1, 2, 3, 4], width=4)
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"
        assert sparkline([]) == ""
        assert len(sparkline(list(range(100)), width=8)) == 8

    def test_progress_bar(self):
        assert progress_bar(None, None).endswith("?%")
        assert progress_bar(12, 24).endswith(" 50%")
        assert progress_bar(24, 24).endswith("100%")

    def test_job_view_accumulates(self):
        view = JobView("job-x")
        view.feed({"kind": "started", "attempt": 1, "total": 24})
        view.feed({"kind": "heartbeat", "step": 8, "total": 24,
                   "n_flow": 900, "us_per_particle": 1.25})
        view.feed({"kind": "metrics", "load_imbalance": 1.1})
        view.feed({"kind": "heartbeat", "step": 16, "total": 24,
                   "n_flow": 950, "us_per_particle": 1.5})
        text = "\n".join(view.lines())
        assert "16/24" in text
        assert "950" in text
        assert "1.500" in text
        assert "imbalance" in text
        assert "heartbeat:2" in text

    def test_fleet_lines_table(self):
        fleet = {
            "health": {"running": 1, "queue_depth": 2, "jobs": 3, "ok": True},
            "jobs": [
                {"job_id": "a", "state": "RUNNING", "step": 8,
                 "total": 24, "n_flow": 900, "us_per_particle": 1.25,
                 "heartbeat_age": 0.4, "attempt": 2},
                {"job_id": "b", "state": "QUEUED"},
            ],
        }
        lines = fleet_lines(fleet)
        assert "1 running" in lines[0]
        assert "8/24" in lines[2]
        assert "0.4s" in lines[2]
        assert lines[2].rstrip().endswith("1")  # attempt 2 = 1 retry

    def test_panel_plain_output_when_not_tty(self):
        from repro.service.watch import _Panel

        buf = io.StringIO()
        panel = _Panel(buf)
        panel.draw(["one"])
        panel.draw(["two"])
        assert buf.getvalue() == "one\ntwo\n"
