"""ABL6 -- operator-splitting (time-step) convergence.

The whole method rests on decoupling motion and collision "for a small
discrete time step" (the paper's opening argument).  In the Baganoff
normalization the time step *is* the velocity scale: halving ``c_mp``
halves how far particles move (and how many collisions fire) per step,
i.e. it refines dt while holding the physics fixed.  If the splitting
error is under control, the converged shock metrics must be unchanged
(collision counts per unit *physical* time, not per step, stay fixed).
"""

from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.core.simulation import Simulation, SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

WEDGE_HALF = Wedge(x_leading=10.0, base=12.5, angle_deg=30.0)

#: (velocity scale, steps multiplier): halving c_mp doubles the steps so
#: both runs cover the same physical time.
CASES = ((0.14, 1.0), (0.07, 2.0))


def _metrics(c_mp: float, step_factor: float):
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(
            mach=4.0, c_mp=c_mp, lambda_mfp=0.0, density=14.0
        ),
        wedge=WEDGE_HALF,
        seed=61,
    )
    sim = Simulation(cfg)
    sim.run(int(200 * step_factor))
    sim.run(int(220 * step_factor), sample=True)
    rho = sim.density_ratio_field()
    fit = fit_shock_angle(rho, WEDGE_HALF)
    plateau = post_shock_plateau(rho, WEDGE_HALF, fit)
    return fit.angle_deg, plateau


def test_abl_timestep_convergence(benchmark, emit):
    coarse = _metrics(*CASES[0])
    fine = benchmark.pedantic(
        _metrics, args=CASES[1], rounds=1, iterations=1
    )

    rec = ExperimentRecord(
        "ABL6", "operator-splitting convergence (halved time step)"
    )
    rec.add("shock angle, nominal dt (deg)", 45.22, coarse[0], rel_tol=0.05)
    rec.add("shock angle, dt/2 (deg)", coarse[0], fine[0], rel_tol=0.04)
    rec.add("density ratio, nominal dt", 3.70, coarse[1], rel_tol=0.08)
    rec.add("density ratio, dt/2", coarse[1], fine[1], rel_tol=0.05)
    emit(rec)

    # Refinement changes nothing beyond statistics: the splitting error
    # at the production time step is already negligible.
    assert abs(fine[0] - coarse[0]) < 2.0
    assert abs(fine[1] - coarse[1]) / coarse[1] < 0.05
