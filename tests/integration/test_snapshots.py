"""Integration tests for checkpoint/restore."""

import numpy as np
import pytest

from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.io.snapshots import load_simulation, save_simulation


class TestSnapshotRoundtrip:
    def test_state_restored_exactly(self, small_config, tmp_path):
        sim = Simulation(small_config)
        sim.run(12)
        sim.run(4, sample=True)
        path = tmp_path / "ckpt.npz"
        save_simulation(sim, path)
        back = load_simulation(path)
        assert back.step_count == sim.step_count
        assert np.array_equal(back.particles.x, sim.particles.x)
        assert np.array_equal(back.particles.perm, sim.particles.perm)
        assert back.reservoir.size == sim.reservoir.size
        assert back.boundaries.plunger.position == pytest.approx(
            sim.boundaries.plunger.position
        )
        assert back.sampler.steps == sim.sampler.steps
        assert np.allclose(
            back.density_ratio_field(), sim.density_ratio_field()
        )

    def test_continuation_is_bitwise_identical(self, small_config, tmp_path):
        # Continue vs checkpoint-restore-continue: identical trajectories.
        sim = Simulation(small_config)
        sim.run(10)
        path = tmp_path / "ckpt.npz"
        save_simulation(sim, path)
        restored = load_simulation(path)
        sim.run(8)
        restored.run(8)
        assert np.array_equal(sim.particles.x, restored.particles.x)
        assert np.array_equal(sim.particles.u, restored.particles.u)
        assert sim.reservoir.size == restored.reservoir.size

    def test_config_roundtrip_no_wedge(self, box_config, tmp_path):
        sim = Simulation(box_config)
        sim.run(3)
        path = tmp_path / "b.npz"
        save_simulation(sim, path)
        back = load_simulation(path)
        assert back.config.wedge is None
        assert back.config.freestream.mach == box_config.freestream.mach

    def test_version_check(self, small_config, tmp_path):
        sim = Simulation(small_config)
        sim.run(1)
        path = tmp_path / "v.npz"
        save_simulation(sim, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.array(999)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConfigurationError):
            load_simulation(path)
