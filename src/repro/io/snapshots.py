"""Exact checkpoint/restore of a running simulation.

A snapshot captures everything needed to continue a run bit-for-bit:

* the particle population (physical + computational state),
* the reservoir population,
* the plunger phase,
* the RNG state (NumPy bit-generator state),
* the sampler's accumulated moments and step counters,
* the configuration (so a restore can verify compatibility).

Snapshots are single ``.npz`` files; the configuration is stored as a
small JSON blob inside the archive.  ``load_simulation`` reconstructs a
:class:`~repro.core.simulation.Simulation` whose subsequent steps are
identical to the original run's (tested).
"""

from __future__ import annotations

import json
import pathlib
import zipfile
from typing import Callable, Optional, Union

import numpy as np

from repro.core.particles import ParticleArrays
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import CheckpointCorruptionError, ConfigurationError
from repro.geometry.bodies import body_from_dict
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel

#: Snapshot format version; bumped on layout changes.  Version 2 adds
#: the sharded-backend continuation fields (worker count and in-transit
#: reservoir flux); version 3 adds the slab-edge tuple (adaptive load
#: balancing can leave the decomposition non-uniform).  Older archives
#: still load: v1 restores serially, v2 restores with the uniform
#: split.
FORMAT_VERSION = 3

PathLike = Union[str, pathlib.Path]


def _config_to_json(config: SimulationConfig) -> str:
    blob = {
        "domain": {"nx": config.domain.nx, "ny": config.domain.ny},
        "freestream": {
            "mach": config.freestream.mach,
            "c_mp": config.freestream.c_mp,
            "lambda_mfp": config.freestream.lambda_mfp,
            "density": config.freestream.density,
            "gamma": config.freestream.gamma,
        },
        # The wedge keeps writing its bare parameter dict (no "kind"
        # key) so blobs from pre-registry runs and wedge runs stay
        # byte-identical; other bodies carry their dispatch kind.
        "wedge": None
        if config.wedge is None
        else (
            {
                "x_leading": config.wedge.x_leading,
                "base": config.wedge.base,
                "angle_deg": config.wedge.angle_deg,
            }
            if isinstance(config.wedge, Wedge)
            else config.wedge.to_config_dict()
        ),
        "model": {
            "alpha": config.model.alpha
            if np.isfinite(config.model.alpha)
            else "inf",
            "rotational_dof": config.model.rotational_dof,
            "mass": config.model.mass,
            "name": config.model.name,
        },
        "sort_scale": config.sort_scale,
        # The incremental kernel keeps NO persistent order state in the
        # snapshot: the canonical order is a pure function of the cell
        # column, so restore just triggers a full rebuild on the first
        # step (IncrementalSorter.prepare sees a new particle object).
        "sort_kernel": config.sort_kernel,
        "plunger_trigger": config.plunger_trigger,
        "reservoir_fraction": config.reservoir_fraction,
        "reservoir_mix_rounds": config.reservoir_mix_rounds,
    }
    # Registry-era fields ride along only when they deviate from the
    # defaults, keeping wedge-run blobs byte-identical to pre-registry
    # archives (bitwise continuation tests compare them).
    if config.wall_model != "specular":
        blob["wall_model"] = config.wall_model
    if config.accommodation != 1.0:
        blob["accommodation"] = config.accommodation
    if config.scenario is not None:
        blob["scenario"] = config.scenario
    return json.dumps(blob)


def _config_from_json(blob: str) -> SimulationConfig:
    d = json.loads(blob)
    alpha = d["model"]["alpha"]
    model = MolecularModel(
        alpha=float("inf") if alpha == "inf" else float(alpha),
        rotational_dof=int(d["model"]["rotational_dof"]),
        mass=float(d["model"]["mass"]),
        name=d["model"]["name"],
    )
    return SimulationConfig(
        domain=Domain(**d["domain"]),
        freestream=Freestream(**d["freestream"]),
        wedge=None if d["wedge"] is None else body_from_dict(d["wedge"]),
        model=model,
        sort_scale=int(d["sort_scale"]),
        # Archives predating the kernel field were counting-kernel runs;
        # defaulting there keeps their continuation bitwise unchanged.
        sort_kernel=d.get("sort_kernel", "counting"),
        plunger_trigger=float(d["plunger_trigger"]),
        reservoir_fraction=float(d["reservoir_fraction"]),
        reservoir_mix_rounds=int(d["reservoir_mix_rounds"]),
        seed=0,  # the live RNG state below supersedes the seed
        wall_model=d.get("wall_model", "specular"),
        accommodation=float(d.get("accommodation", 1.0)),
        scenario=d.get("scenario"),
    )


def _pack_particles(prefix: str, parts: ParticleArrays) -> dict:
    return {
        f"{prefix}_x": parts.x,
        f"{prefix}_y": parts.y,
        f"{prefix}_u": parts.u,
        f"{prefix}_v": parts.v,
        f"{prefix}_w": parts.w,
        f"{prefix}_rot": parts.rot,
        f"{prefix}_perm": parts.perm,
        f"{prefix}_cell": parts.cell,
    }


def _unpack_particles(prefix: str, data) -> ParticleArrays:
    return ParticleArrays(
        x=data[f"{prefix}_x"].copy(),
        y=data[f"{prefix}_y"].copy(),
        u=data[f"{prefix}_u"].copy(),
        v=data[f"{prefix}_v"].copy(),
        w=data[f"{prefix}_w"].copy(),
        rot=data[f"{prefix}_rot"].copy(),
        perm=data[f"{prefix}_perm"].copy(),
        cell=data[f"{prefix}_cell"].copy(),
    )


def save_simulation(
    sim: Simulation,
    path: PathLike,
    fault_plan=None,
    compress: bool = True,
) -> None:
    """Write an exact checkpoint of ``sim`` to ``path`` (.npz).

    Sharded simulations are gathered first (the shard workers hold the
    authoritative state), and the backend's continuation fields --
    worker count, in-transit reservoir flux -- are recorded so a
    restore at the same worker count continues bitwise.

    ``compress=False`` writes a plain (stored) archive: ~30x faster at
    ~25% more bytes, the right trade for high-cadence supervision
    checkpoints that are pruned minutes later.  ``load_simulation``
    reads both transparently.

    ``fault_plan`` arms the ``truncate`` injection point: an armed
    truncation fault cuts the written archive in half so the restore
    path (and the supervisor's checkpoint fallback) can be tested
    against a realistic torn write.
    """
    sim.gather()
    n_workers = getattr(sim.backend, "n_workers", 1)
    flux = getattr(sim.backend, "pending_flux", 0)
    # The stateless key of the per-shard RNG streams.  -1 marks a seed
    # that cannot be serialized (a live Generator / complex
    # SeedSequence); such snapshots restore serially or as a *new*
    # statistical realization, never bitwise-sharded.
    seed = sim.config.seed
    if seed is None:
        from repro.rng import DEFAULT_SEED

        shard_seed = DEFAULT_SEED
    elif isinstance(seed, (int, np.integer)):
        shard_seed = int(seed)
    else:
        shard_seed = -1
    rng_state = json.dumps(sim.rng.bit_generator.state)
    arrays = {
        "backend_workers": np.array(int(n_workers)),
        "flux_pending": np.array(int(flux)),
        "shard_seed": np.array(shard_seed),
        "format_version": np.array(FORMAT_VERSION),
        "config_json": np.array(_config_to_json(sim.config)),
        "rng_state_json": np.array(rng_state),
        "step_count": np.array(sim.step_count),
        "plunger_position": np.array(sim.boundaries.plunger.position),
        "sampler_steps": np.array(sim.sampler.steps),
        "sampler_count": sim.sampler._count,
        "sampler_mu": sim.sampler._mu,
        "sampler_mv": sim.sampler._mv,
        "sampler_mw": sim.sampler._mw,
        "sampler_e_trans": sim.sampler._e_trans,
        "sampler_e_rot": sim.sampler._e_rot,
    }
    # v3: the live slab edges, so a checkpoint taken after a rebalance
    # restores the non-uniform decomposition instead of re-splitting
    # uniformly (which would shuffle particles across shards and break
    # bitwise continuation).
    slab_edges = getattr(sim.backend, "slab_edges", None)
    if slab_edges is not None:
        arrays["slab_edges"] = np.asarray(slab_edges, dtype=np.int64)
    if sim.surface is not None:
        # v2: the surface-load accumulators ride along too (v1 dropped
        # them, so restored runs silently lost their drag averages).
        arrays["surface_steps"] = np.array(sim.surface._steps)
        arrays["surface_impulse_x"] = sim.surface._impulse_x
        arrays["surface_impulse_y"] = sim.surface._impulse_y
        arrays["surface_hits"] = sim.surface._hits
    arrays.update(_pack_particles("flow", sim.particles))
    arrays.update(_pack_particles("res", sim.reservoir.particles))
    if compress:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)
    if fault_plan is not None:
        fault = fault_plan.take("truncate", sim.step_count)
        if fault is not None:
            p = pathlib.Path(path)
            blob = p.read_bytes()
            p.write_bytes(blob[: len(blob) // 2])


#: Ensemble snapshot format version (independent of the solo format:
#: the archives share the config blob and particle packing but nothing
#: else, and an ensemble archive carries no RNG state at all -- the
#: engine's streams are pure functions of ``(seed, replica, step)``).
ENSEMBLE_FORMAT_VERSION = 1


def save_ensemble(engine, path: PathLike, compress: bool = True) -> None:
    """Write an exact checkpoint of an ensemble run to ``path`` (.npz).

    Captures the replica-blocked flow population with its block
    boundaries, every replica's reservoir, the sampler and surface-load
    accumulators, the shared plunger phase and the step count.  No RNG
    state is stored: the ensemble engine re-derives each step's streams
    from ``(seed, replica, step)``, so the integer seed in the config
    blob is all a bitwise continuation needs.
    """
    seed = engine.config.seed
    if seed is None:
        from repro.rng import DEFAULT_SEED

        ens_seed = DEFAULT_SEED
    elif isinstance(seed, (int, np.integer)):
        ens_seed = int(seed)
    else:
        raise ConfigurationError(
            "ensemble snapshots need an integer (or None) seed; a "
            f"{type(seed).__name__} cannot be serialized"
        )
    arrays = {
        "ensemble_format_version": np.array(ENSEMBLE_FORMAT_VERSION),
        "config_json": np.array(_config_to_json(engine.config)),
        "ensemble_seed": np.array(ens_seed),
        "replica_ids": np.asarray(engine.replica_ids, dtype=np.int64),
        "starts": np.asarray(engine.starts, dtype=np.int64),
        "step_count": np.array(engine.step_count),
        "plunger_position": np.array(engine.boundaries.plunger.position),
        "sampler_steps": np.array(engine.sampler.steps),
        "sampler_count": engine.sampler._count,
        "sampler_mu": engine.sampler._mu,
        "sampler_mv": engine.sampler._mv,
        "sampler_mw": engine.sampler._mw,
        "sampler_e_trans": engine.sampler._e_trans,
        "sampler_e_rot": engine.sampler._e_rot,
    }
    arrays.update(_pack_particles("flow", engine.particles))
    for r, res in enumerate(engine.reservoirs):
        arrays.update(_pack_particles(f"res{r}", res.particles))
    if engine.surfaces is not None:
        for r, surf in enumerate(engine.surfaces):
            arrays[f"surface{r}_steps"] = np.array(surf._steps)
            arrays[f"surface{r}_impulse_x"] = surf._impulse_x
            arrays[f"surface{r}_impulse_y"] = surf._impulse_y
            arrays[f"surface{r}_hits"] = surf._hits
    if compress:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def load_ensemble(path: PathLike):
    """Reconstruct an :class:`repro.ensemble.EnsembleEngine` checkpoint.

    The returned engine continues exactly where the saved one stopped
    for every replica -- same blocks, same reservoirs, same accumulated
    averages, same plunger phase -- and, because the engine's streams
    are keyed rather than advanced, its subsequent steps are bitwise
    identical to the uninterrupted run's.

    Raises :class:`~repro.errors.CheckpointCorruptionError` on a
    truncated or non-ensemble archive.
    """
    import dataclasses

    from repro.core.reservoir import Reservoir
    from repro.core.sampling import EnsembleSampler
    from repro.ensemble.engine import EnsembleEngine

    try:
        with np.load(path, allow_pickle=False) as data:
            if "ensemble_format_version" not in data:
                raise ConfigurationError(
                    "not an ensemble snapshot (missing "
                    "ensemble_format_version); use load_simulation"
                )
            version = int(data["ensemble_format_version"])
            if version != ENSEMBLE_FORMAT_VERSION:
                raise ConfigurationError(
                    f"ensemble snapshot format {version} != supported "
                    f"{ENSEMBLE_FORMAT_VERSION}"
                )
            config = dataclasses.replace(
                _config_from_json(str(data["config_json"])),
                seed=int(data["ensemble_seed"]),
            )
            replica_ids = [int(r) for r in data["replica_ids"]]
            eng = EnsembleEngine._restore_shell(config, replica_ids)
            eng.particles = _unpack_particles("flow", data)
            eng.particles.enable_scratch()
            eng.starts = data["starts"].astype(np.int64).copy()
            eng.reservoirs = []
            for r in range(len(replica_ids)):
                res = Reservoir(
                    config.freestream,
                    rotational_dof=config.model.rotational_dof,
                )
                res.particles = _unpack_particles(f"res{r}", data)
                res.particles.enable_scratch()
                eng.reservoirs.append(res)
            eng.sampler = EnsembleSampler(
                config.domain, len(replica_ids), eng.volume_fractions
            )
            eng.sampler._steps = int(data["sampler_steps"])
            eng.sampler._count[:] = data["sampler_count"]
            eng.sampler._mu[:] = data["sampler_mu"]
            eng.sampler._mv[:] = data["sampler_mv"]
            eng.sampler._mw[:] = data["sampler_mw"]
            eng.sampler._e_trans[:] = data["sampler_e_trans"]
            eng.sampler._e_rot[:] = data["sampler_e_rot"]
            if isinstance(config.wedge, Wedge):
                from repro.core.surface import SurfaceSampler

                eng.surfaces = [
                    SurfaceSampler(config.wedge) for _ in replica_ids
                ]
                for r, surf in enumerate(eng.surfaces):
                    if f"surface{r}_steps" in data:
                        surf._steps = int(data[f"surface{r}_steps"])
                        surf._impulse_x[:] = data[f"surface{r}_impulse_x"]
                        surf._impulse_y[:] = data[f"surface{r}_impulse_y"]
                        surf._hits[:] = data[f"surface{r}_hits"]
            else:
                eng.surfaces = None
            eng.step_count = int(data["step_count"])
            eng.boundaries.plunger.position = float(
                data["plunger_position"]
            )
    except FileNotFoundError:
        raise
    except ConfigurationError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError) as exc:
        raise CheckpointCorruptionError(
            f"checkpoint is unreadable or truncated: {exc}",
            path=str(path),
        ) from exc
    return eng


def load_simulation(
    path: PathLike,
    workers: Optional[int] = None,
    processes: bool = True,
    backend_factory: Optional[Callable] = None,
) -> Simulation:
    """Reconstruct a simulation from a checkpoint.

    The returned simulation continues exactly where the saved one
    stopped: same particles, same reservoir, same plunger phase, same
    RNG stream, same accumulated averages.

    ``workers`` selects the execution backend of the restored run:
    ``None`` keeps the snapshot's own worker count, ``1`` forces the
    serial engine, ``>1`` attaches a sharded backend
    (:class:`repro.parallel.backend.ShardedBackend`) with the saved
    in-transit reservoir flux.  Continuation is bitwise only at the
    snapshot's own worker count (the per-shard RNG streams and the
    slab partition are keyed by it); restoring at a different count is
    statistically equivalent, not bitwise.

    ``backend_factory(n_workers=..., processes=..., flux_pending=...)``
    overrides the sharded-backend construction (the supervisor uses it
    to re-arm fault plans and shorter barrier timeouts on respawn); it
    also receives ``edges=...`` when the archive carries a slab-edge
    tuple for this worker count (v3+, written after a rebalance).

    Raises :class:`~repro.errors.CheckpointCorruptionError` when the
    archive is truncated, unreadable, or missing required members --
    a distinct, retryable failure so a supervisor can fall back to an
    older checkpoint instead of aborting the run.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version not in (1, 2, FORMAT_VERSION):
                raise ConfigurationError(
                    f"snapshot format {version} != supported {FORMAT_VERSION}"
                )
            if version >= 2:
                saved_workers = int(data["backend_workers"])
                flux_pending = int(data["flux_pending"])
                shard_seed = int(data["shard_seed"])
            else:
                saved_workers = 1
                flux_pending = 0
                shard_seed = -1
            # Legacy (pre-v3) archives carry no edge tuple: they were
            # written by uniform-split runs, so restoring uniform is
            # exact, not an approximation.
            saved_edges = (
                tuple(int(e) for e in data["slab_edges"])
                if "slab_edges" in data
                else None
            )
            config = _config_from_json(str(data["config_json"]))
            sim = Simulation(config)
            sim.particles = _unpack_particles("flow", data)
            sim.reservoir.particles = _unpack_particles("res", data)
            if sim.hotpath:
                # The restored populations must take the same kernels as
                # the saved run (scratch-enabled hot path vs legacy
                # differ in memory order after in-place reorders), or
                # continuation would not be bitwise identical.
                sim.particles.enable_scratch()
                sim.reservoir.particles.enable_scratch()
            sim.step_count = int(data["step_count"])
            sim.boundaries.plunger.position = float(data["plunger_position"])
            sim.rng.bit_generator.state = json.loads(
                str(data["rng_state_json"])
            )
            sim.sampler._steps = int(data["sampler_steps"])
            sim.sampler._count[:] = data["sampler_count"]
            sim.sampler._mu[:] = data["sampler_mu"]
            sim.sampler._mv[:] = data["sampler_mv"]
            sim.sampler._mw[:] = data["sampler_mw"]
            sim.sampler._e_trans[:] = data["sampler_e_trans"]
            sim.sampler._e_rot[:] = data["sampler_e_rot"]
            if sim.surface is not None and "surface_steps" in data:
                sim.surface._steps = int(data["surface_steps"])
                sim.surface._impulse_x[:] = data["surface_impulse_x"]
                sim.surface._impulse_y[:] = data["surface_impulse_y"]
                sim.surface._hits[:] = data["surface_hits"]
    except FileNotFoundError:
        raise
    except ConfigurationError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError) as exc:
        raise CheckpointCorruptionError(
            f"checkpoint is unreadable or truncated: {exc}",
            path=str(path),
        ) from exc

    n_workers = saved_workers if workers is None else int(workers)
    if n_workers > 1:
        import dataclasses

        from repro.parallel.backend import ShardedBackend

        if shard_seed < 0:
            raise ConfigurationError(
                "this snapshot carries no shard-stream seed (generator "
                "seed, or a pre-v2 archive); restore with workers=1"
            )
        # The sharded backend keys its per-(shard, step) RNG streams
        # from config.seed, so the restored configuration must carry
        # the original stateless seed for bitwise continuation.
        sim.config = dataclasses.replace(sim.config, seed=shard_seed)
        # The saved edge tuple only applies at the snapshot's own
        # worker count; a different count re-splits uniformly (the run
        # is a new statistical realization anyway).
        edges = (
            saved_edges
            if saved_edges is not None and len(saved_edges) == n_workers + 1
            else None
        )
        if backend_factory is not None:
            kwargs = dict(
                n_workers=n_workers,
                processes=processes,
                flux_pending=flux_pending,
            )
            if edges is not None:
                kwargs["edges"] = edges
            backend = backend_factory(**kwargs)
        else:
            backend = ShardedBackend(
                n_workers,
                processes=processes,
                flux_pending=flux_pending,
                edges=edges,
            )
        sim.backend = backend
        backend.bind(sim)
    return sim
