"""Unit tests for the domain, wedge and reflection kernels."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.domain import Domain
from repro.geometry.reflect import (
    reflect_diffuse_axis,
    reflect_plane,
    reflect_specular_axis,
)
from repro.geometry.wedge import Wedge


class TestDomain:
    def test_paper_grid(self):
        d = Domain()
        assert d.shape == (98, 64)
        assert d.n_cells == 98 * 64

    def test_cell_index_layout(self):
        d = Domain(10, 4)
        # Flattening is i * ny + j.
        assert d.cell_index(np.array([2.5]), np.array([3.5]))[0] == 2 * 4 + 3

    def test_cell_roundtrip(self, rng):
        d = Domain(10, 8)
        x = rng.uniform(0, 10, 100)
        y = rng.uniform(0, 8, 100)
        idx = d.cell_index(x, y)
        i, j = d.coords_from_cell_index(idx)
        assert np.array_equal(d.cell_index_from_coords(i, j), idx)

    def test_boundary_clipping(self):
        d = Domain(10, 8)
        i, j = d.cell_coords(np.array([10.0, -0.5]), np.array([8.0, -1.0]))
        assert i.tolist() == [9, 0]
        assert j.tolist() == [7, 0]

    def test_inside_and_exit(self):
        d = Domain(10, 8)
        assert d.inside(np.array([5.0]), np.array([4.0]))[0]
        assert not d.inside(np.array([-0.1]), np.array([4.0]))[0]
        assert d.exited_downstream(np.array([10.0]))[0]
        assert not d.exited_downstream(np.array([9.99]))[0]

    def test_cell_centers(self):
        d = Domain(3, 2)
        cx, cy = d.cell_centers()
        assert cx.shape == (3, 2)
        assert cx[0, 0] == 0.5 and cy[0, 1] == 1.5

    def test_too_small_rejected(self):
        with pytest.raises(GeometryError):
            Domain(1, 5)


class TestWedge:
    def test_paper_wedge_shape(self):
        w = Wedge()
        assert w.x_leading == 20.0 and w.base == 25.0
        assert w.height == pytest.approx(25.0 * math.tan(math.radians(30.0)))
        assert w.corner == (45.0, pytest.approx(14.43, abs=0.01))

    def test_inside_classification(self):
        w = Wedge(x_leading=10, base=10, angle_deg=45)
        x = np.array([9.0, 12.0, 12.0, 21.0, 15.0])
        y = np.array([0.5, 1.0, 3.0, 1.0, -0.5])
        inside = w.inside(x, y)
        assert inside.tolist() == [False, True, False, False, False]

    def test_ramp_height(self):
        w = Wedge(x_leading=10, base=10, angle_deg=45)
        assert w.ramp_height_at(np.array([15.0]))[0] == pytest.approx(5.0)
        assert w.ramp_height_at(np.array([5.0]))[0] == 0.0

    def test_normal_is_unit_and_outward(self):
        w = Wedge(angle_deg=30)
        nx, ny = w.ramp_normal
        assert nx**2 + ny**2 == pytest.approx(1.0)
        assert nx < 0 and ny > 0

    def test_validate_in_domain(self):
        Wedge(x_leading=20, base=25, angle_deg=30).validate_in(Domain(98, 64))
        with pytest.raises(GeometryError):
            Wedge(x_leading=90, base=25, angle_deg=30).validate_in(Domain(98, 64))
        with pytest.raises(GeometryError):
            Wedge(x_leading=5, base=30, angle_deg=70).validate_in(Domain(98, 24))

    def test_invalid_parameters(self):
        with pytest.raises(GeometryError):
            Wedge(base=0.0)
        with pytest.raises(GeometryError):
            Wedge(angle_deg=90.0)
        with pytest.raises(GeometryError):
            Wedge(x_leading=-1.0)

    def test_volume_fractions_bounds_and_values(self):
        d = Domain(40, 20)
        w = Wedge(x_leading=10, base=10, angle_deg=45)
        vf = w.open_volume_fractions(d, supersample=32)
        assert vf.shape == d.shape
        assert vf.min() >= 0.0 and vf.max() <= 1.0
        # Cell fully inside the solid.
        assert vf[18, 0] == 0.0
        # Cell fully in the open flow.
        assert vf[5, 5] == 1.0
        # A 45-degree ramp cuts its diagonal cells exactly in half.
        assert vf[12, 2] == pytest.approx(0.5, abs=0.03)

    def test_total_open_area_matches_triangle(self):
        d = Domain(40, 20)
        w = Wedge(x_leading=10, base=10, angle_deg=45)
        vf = w.open_volume_fractions(d, supersample=32)
        open_area = vf.sum()
        solid_area = 0.5 * 10 * 10
        assert open_area == pytest.approx(d.nx * d.ny - solid_area, rel=0.005)

    def test_specular_reflection_conserves_speed(self, rng):
        w = Wedge(x_leading=10, base=10, angle_deg=30)
        x = rng.uniform(10.5, 19.5, 50)
        y = w.ramp_height_at(x) * rng.uniform(0.2, 0.9, 50)  # inside
        u = rng.normal(0.3, 0.1, 50)
        v = rng.normal(-0.2, 0.1, 50)
        speed2 = u**2 + v**2
        x2, y2, u2, v2 = w.reflect_specular(x, y, u, v)
        assert np.allclose(u2**2 + v2**2, speed2)
        assert not np.any(w.inside(x2, y2))

    def test_ramp_reflection_mirrors_across_plane(self):
        w = Wedge(x_leading=0, base=10, angle_deg=45)
        # Point just below the 45-deg plane at (5, 4): mirror lands at
        # (4, 5); incoming velocity (1, 0) reflects to (0, 1).
        x, y, u, v = w.reflect_specular(
            np.array([5.0]), np.array([4.0]), np.array([1.0]), np.array([0.0])
        )
        assert x[0] == pytest.approx(4.0)
        assert y[0] == pytest.approx(5.0)
        assert u[0] == pytest.approx(0.0, abs=1e-12)
        assert v[0] == pytest.approx(1.0)

    def test_back_face_reflection(self):
        w = Wedge(x_leading=10, base=10, angle_deg=45)
        # Particle moved upstream through the back face at x = 20.
        x, y, u, v = w.reflect_specular(
            np.array([19.5]), np.array([2.0]), np.array([-1.0]), np.array([0.0])
        )
        assert x[0] == pytest.approx(20.5)
        assert u[0] == pytest.approx(1.0)
        assert v[0] == pytest.approx(0.0)

    def test_no_op_when_all_outside(self):
        w = Wedge()
        x, y, u, v = w.reflect_specular(
            np.array([1.0]), np.array([1.0]), np.array([0.1]), np.array([0.0])
        )
        assert x[0] == 1.0 and y[0] == 1.0


class TestAxisReflection:
    def test_floor_reflection(self):
        p, v = reflect_specular_axis(np.array([-0.3]), np.array([-0.5]), 0.0, "above")
        assert p[0] == pytest.approx(0.3)
        assert v[0] == pytest.approx(0.5)

    def test_ceiling_reflection(self):
        p, v = reflect_specular_axis(np.array([8.2]), np.array([0.5]), 8.0, "below")
        assert p[0] == pytest.approx(7.8)
        assert v[0] == pytest.approx(-0.5)

    def test_untouched_particles_unchanged(self):
        p, v = reflect_specular_axis(np.array([0.5]), np.array([-0.1]), 0.0, "above")
        assert p[0] == 0.5 and v[0] == -0.1

    def test_invalid_side(self):
        with pytest.raises(ConfigurationError):
            reflect_specular_axis(np.array([0.0]), np.array([0.0]), 0.0, "left")


class TestDiffuseReflection:
    def test_reemission_into_gas(self, rng):
        n = 4000
        pos = np.concatenate((np.full(n // 2, -0.1), np.full(n // 2, 0.5)))
        u = np.full(n, 0.1)
        v = np.full(n, -0.4)
        w = np.zeros(n)
        rot = np.zeros((n, 2))
        new_pos, (u2, v2, w2), rot2, crossed = reflect_diffuse_axis(
            rng, pos, (u, v, w), rot, wall=0.0, side="above",
            normal_axis=1, wall_c_mp=0.2,
        )
        assert crossed.sum() == n // 2
        assert np.all(new_pos >= 0.0)
        # Normal velocity points into the gas for re-emitted particles.
        assert np.all(v2[crossed] > 0.0)
        # Tangential components thermalized to wall temperature.
        assert u2[crossed].mean() == pytest.approx(0.0, abs=0.02)
        assert u2[crossed].var() == pytest.approx(0.02, rel=0.15)
        # Untouched particles keep their state.
        assert np.all(v2[~crossed] == -0.4)

    def test_rotational_thermalized(self, rng):
        n = 2000
        pos = np.full(n, -0.1)
        rot = np.full((n, 2), 5.0)
        _, _, rot2, crossed = reflect_diffuse_axis(
            rng, pos, (np.zeros(n), np.zeros(n), np.zeros(n)), rot,
            wall=0.0, side="above", normal_axis=1, wall_c_mp=0.2,
        )
        assert np.abs(rot2[crossed].mean()) < 0.05

    def test_invalid_args(self, rng):
        z = np.zeros(1)
        with pytest.raises(ConfigurationError):
            reflect_diffuse_axis(rng, z, (z, z, z), np.zeros((1, 2)), 0.0,
                                 "above", normal_axis=5, wall_c_mp=0.2)
        with pytest.raises(ConfigurationError):
            reflect_diffuse_axis(rng, z, (z, z, z), np.zeros((1, 2)), 0.0,
                                 "above", normal_axis=1, wall_c_mp=0.0)


class TestPlaneReflection:
    def test_mirror_and_velocity(self):
        x, y, u, v = reflect_plane(
            np.array([1.0]), np.array([-1.0]),
            np.array([0.0]), np.array([-1.0]),
            point=(0.0, 0.0), normal=(0.0, 1.0),
            mask=np.array([True]),
        )
        assert y[0] == pytest.approx(1.0)
        assert v[0] == pytest.approx(1.0)

    def test_zero_normal_rejected(self):
        with pytest.raises(ConfigurationError):
            reflect_plane(
                np.zeros(1), np.zeros(1), np.zeros(1), np.zeros(1),
                point=(0, 0), normal=(0, 0), mask=np.array([True]),
            )
