"""The shared scenario-validation harness (golden + closed-form).

Every registered scenario carries an acceptance contract in
``spec.validation``:

``checks``
    A list of observable checks.  Each has a ``name``, a ``kind``
    (how the number is measured from the run) and an ``expect``
    (where the reference value comes from):

    kinds
        * ``shock_angle`` -- least-squares fitted oblique-shock angle
          above the wedge ramp (degrees);
        * ``plateau_density_ratio`` -- mean density ratio in the shock
          layer;
        * ``ramp_pressure_ratio`` -- mean ramp surface pressure over
          the freestream static pressure;
        * ``band_mean`` -- mean density ratio over a rectangular cell
          band ``x = [lo, hi)``, ``y = [lo, hi)`` (field indices);
        * ``field_max`` -- peak density ratio anywhere in the field.

        Unsteady scenarios tag band checks with a ``window`` index;
        each window is a fresh time average, so the checks pin the
        *evolution* of the flow, not just its end state.

    expects
        * ``theory:shock_angle`` -- theta-beta-M oblique-shock angle;
        * ``theory:density_ratio`` -- Rankine-Hugoniot density ratio;
        * ``theory:surface_pressure`` -- oblique-shock ramp pressure;
        * ``theory:free_molecular_pressure`` -- exact collisionless
          specular-plate pressure;
        * ``const`` -- a literal reference (``value`` key);
        * ``golden`` -- the committed golden file carries the value
          and tolerance.

    Closed-form/const checks carry their own ``rel_tol``/``abs_tol``.

``golden``
    File name under ``repro/scenarios/golden/`` holding the golden
    observables for the ``expect = "golden"`` checks.  Golden values
    are the cross-seed mean at the scenario's validation scale and the
    tolerance is floored at 3x the worst cross-seed deviation, so a
    correct run at the pinned seed passes with margin while a physics
    regression beyond run-to-run noise fails (see
    :func:`regenerate_golden` and ``docs/scenarios.md``).

``overrides``
    Optional reduced-scale overrides (grid, density, schedule) applied
    for validation runs, keeping the CI matrix seconds-per-scenario.

Regenerate golden files after an intentional physics change with::

    PYTHONPATH=src python -m repro.scenarios <name> [--seeds N]
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.core.sampling import CellSampler
from repro.errors import ConfigurationError, ValidationError
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.scenarios.spec import ScenarioSpec

#: Directory of committed golden-observable files (package data).
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Tolerance floors for regenerated golden observables: never tighter
#: than 3% of the value (absolute floor 0.03), never tighter than 3x
#: the worst cross-seed deviation actually measured.
GOLDEN_REL_FLOOR = 0.03
GOLDEN_ABS_FLOOR = 0.03
GOLDEN_SPREAD_FACTOR = 3.0

CHECK_KINDS = (
    "shock_angle",
    "plateau_density_ratio",
    "ramp_pressure_ratio",
    "band_mean",
    "field_max",
)

THEORY_EXPECTS = (
    "theory:shock_angle",
    "theory:density_ratio",
    "theory:surface_pressure",
    "theory:free_molecular_pressure",
)


@dataclass(frozen=True)
class ScenarioRun:
    """Raw harvest of one scenario run: fields + surface integral."""

    spec: ScenarioSpec
    #: Time-averaged density-ratio fields, one per sampling window
    #: (steady scenarios have exactly one).
    fields: List[np.ndarray]
    #: Body object actually simulated (post-overrides).
    body: Any
    mach: float
    gamma: float
    #: Mean ramp pressure / freestream static pressure (wedge runs).
    ramp_pressure_ratio: Optional[float]


@dataclass(frozen=True)
class CheckResult:
    """One observable check's outcome."""

    name: str
    kind: str
    expect: str
    value: float
    expected: float
    tol: float
    tol_kind: str  # "rel" | "abs" | "ci"
    ok: bool


@dataclass(frozen=True)
class ValidationReport:
    """Every check of one scenario, plus the run parameters used."""

    scenario: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_text(self) -> str:
        """Human-readable per-check report (printed by ``--validate``)."""
        lines = [f"scenario {self.scenario}: "
                 f"{'PASS' if self.ok else 'FAIL'}"]
        for r in self.results:
            mark = "ok " if r.ok else "FAIL"
            if r.tol_kind == "rel":
                tol = f"rel {r.tol:.3g}"
            elif r.tol_kind == "ci":
                tol = f"ci +/-{r.tol:.3g}"
            else:
                tol = f"abs {r.tol:.3g}"
            lines.append(
                f"  [{mark}] {r.name:<28s} {r.value:10.4f}  "
                f"expected {r.expected:10.4f}  ({r.expect}, {tol})"
            )
        return "\n".join(lines)


# -- running ------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    overrides: Optional[Mapping] = None,
    seed: Optional[int] = None,
) -> ScenarioRun:
    """Run a scenario at validation scale and harvest its observables.

    ``spec.validation["overrides"]`` applies first (the reduced-scale
    validation configuration), then caller ``overrides``, then the
    ``seed`` override (used by the golden regenerator's seed sweep).
    """
    ov: Dict[str, Any] = dict(spec.validation.get("overrides", {}))
    if overrides:
        ov.update(overrides)
    if seed is not None:
        ov["seed"] = int(seed)
    sim = spec.build_simulation(overrides=ov)
    transient, average = spec.resolve_schedule(ov)
    fields: List[np.ndarray] = []
    if spec.unsteady is None:
        if transient > 0:
            sim.run(transient)
        sim.run(average, sample=True)
        fields.append(sim.density_ratio_field())
    else:
        if spec.is_3d:
            raise ConfigurationError(
                f"scenario {spec.name!r}: unsteady windows are 2-D only"
            )
        # Impulsive start: no transient -- the windows *are* the
        # transient, each a fresh time average so the sequence shows
        # the flow establishing itself.
        for _ in range(int(spec.unsteady["windows"])):
            sim.sampler = CellSampler(sim.config.domain, sim.volume_fractions)
            sim.run(int(spec.unsteady["window_steps"]), sample=True)
            fields.append(sim.density_ratio_field())
    ramp_ratio = None
    surface = getattr(sim, "surface", None)
    if surface is not None and surface._steps > 0:
        fs = sim.config.freestream
        p_inf = fs.density * fs.rt
        ramp_ratio = float(surface.ramp_pressure()[2:-2].mean() / p_inf)
    body = sim.config.wedge
    fs = sim.config.freestream
    if hasattr(sim, "close"):
        sim.close()
    return ScenarioRun(
        spec=spec,
        fields=fields,
        body=body,
        mach=fs.mach,
        gamma=fs.gamma,
        ramp_pressure_ratio=ramp_ratio,
    )


# -- measuring ----------------------------------------------------------


def measure_check(run: ScenarioRun, check: Mapping[str, Any]) -> float:
    """Evaluate one check's observable on a finished run."""
    kind = check["kind"]
    if kind not in CHECK_KINDS:
        raise ConfigurationError(
            f"unknown check kind {kind!r}; expected one of {CHECK_KINDS}"
        )
    window = int(check.get("window", 0))
    if not 0 <= window < len(run.fields):
        raise ConfigurationError(
            f"check {check['name']!r}: window {window} out of range "
            f"(run produced {len(run.fields)} fields)"
        )
    rho = run.fields[window]
    if kind == "band_mean":
        try:
            x_lo, x_hi = (int(v) for v in check["x"])
            y_lo, y_hi = (int(v) for v in check["y"])
        except (KeyError, TypeError, ValueError):
            raise ConfigurationError(
                f"check {check['name']!r}: band_mean needs x = [lo, hi] "
                "and y = [lo, hi] integer cell ranges"
            ) from None
        band = rho[x_lo:x_hi, y_lo:y_hi]
        if band.size == 0:
            raise ConfigurationError(
                f"check {check['name']!r}: empty band "
                f"x=[{x_lo},{x_hi}) y=[{y_lo},{y_hi}) on a "
                f"{rho.shape} field"
            )
        return float(band.mean())
    if kind == "field_max":
        return float(rho.max())
    if kind == "ramp_pressure_ratio":
        if run.ramp_pressure_ratio is None:
            raise ConfigurationError(
                f"check {check['name']!r}: no surface sampler on this "
                "run (ramp_pressure_ratio needs a 2-D wedge scenario)"
            )
        return run.ramp_pressure_ratio
    # Shock metrology: wedge-only.
    if not isinstance(run.body, Wedge):
        raise ConfigurationError(
            f"check {check['name']!r}: {kind} requires wedge geometry"
        )
    from repro.analysis.shock import fit_shock_angle, post_shock_plateau

    fit = fit_shock_angle(rho, run.body)
    if kind == "shock_angle":
        return float(fit.angle_deg)
    return float(post_shock_plateau(rho, run.body, fit))


def measure_check_ensemble(
    runs: List[ScenarioRun],
    check: Mapping[str, Any],
    confidence: float = 0.95,
):
    """One check's observable over an ensemble of runs, as a t-CI.

    Applies :func:`measure_check` to each member and returns the
    :class:`repro.core.sampling.EnsembleStatistic` (mean, standard
    error, confidence interval) of the per-member values.  The members
    can be independent seed sweeps (:func:`validate_scenario` with
    ``ensemble=``) or the replicas of one batched
    :class:`repro.ensemble.EnsembleEngine` run via
    :func:`repro.ensemble.replica_scenario_runs`.
    """
    from repro.core.sampling import ensemble_statistic

    if not runs:
        raise ConfigurationError("measure_check_ensemble needs >= 1 run")
    values = [measure_check(run, check) for run in runs]
    return ensemble_statistic(values, confidence=confidence)


def expected_value(run: ScenarioRun, check: Mapping[str, Any]) -> float:
    """Closed-form / const reference value for a non-golden check."""
    expect = check["expect"]
    if expect == "const":
        return float(check["value"])
    body = run.body
    if expect == "theory:shock_angle":
        return float(theory.shock_angle_deg(run.mach, body.angle_deg))
    if expect == "theory:density_ratio":
        return float(
            theory.oblique_shock_density_ratio(
                run.mach, math.radians(body.angle_deg)
            )
        )
    if expect == "theory:surface_pressure":
        from repro.core.surface import oblique_shock_surface_pressure_ratio

        return float(
            oblique_shock_surface_pressure_ratio(
                run.mach, body.angle_deg, run.gamma
            )
        )
    if expect == "theory:free_molecular_pressure":
        return float(
            theory.free_molecular_specular_pressure_ratio(
                run.mach, body.angle, run.gamma
            )
        )
    raise ConfigurationError(
        f"check {check['name']!r}: unknown expect {expect!r}; valid: "
        f"{THEORY_EXPECTS + ('const', 'golden')}"
    )


# -- golden files -------------------------------------------------------


def golden_path(spec: ScenarioSpec) -> Optional[pathlib.Path]:
    """Path of the scenario's golden file (None when it has none)."""
    fname = spec.validation.get("golden")
    return None if fname is None else GOLDEN_DIR / fname


def load_golden(spec: ScenarioSpec) -> Dict[str, Any]:
    """Parse the scenario's committed golden file (errors if absent)."""
    path = golden_path(spec)
    if path is None:
        raise ConfigurationError(
            f"scenario {spec.name!r} declares no golden file but has "
            "golden-expecting checks"
        )
    if not path.exists():
        raise ConfigurationError(
            f"scenario {spec.name!r}: golden file {path.name} is missing; "
            "regenerate with: python -m repro.scenarios " + spec.name
        )
    return json.loads(path.read_text())


def validate_contract(spec: ScenarioSpec) -> None:
    """Statically verify the scenario's acceptance contract.

    Raises unless every check has a known kind, a resolvable expect,
    a tolerance, and -- for golden expects -- a committed golden entry.
    The registry-completeness test runs this over the whole library, so
    a scenario without validation fails CI, not review.
    """
    golden_names = None
    for check in spec.validation["checks"]:
        name = check.get("name")
        if check["kind"] not in CHECK_KINDS:
            raise ConfigurationError(
                f"scenario {spec.name!r} check {name!r}: unknown kind "
                f"{check['kind']!r}"
            )
        expect = check["expect"]
        if expect == "golden":
            if golden_names is None:
                golden_names = set(load_golden(spec)["observables"])
            if name not in golden_names:
                raise ConfigurationError(
                    f"scenario {spec.name!r} check {name!r}: not present "
                    f"in golden file {spec.validation['golden']!r}; "
                    "regenerate it"
                )
            continue
        if expect != "const" and expect not in THEORY_EXPECTS:
            raise ConfigurationError(
                f"scenario {spec.name!r} check {name!r}: unknown expect "
                f"{expect!r}"
            )
        if expect == "const" and "value" not in check:
            raise ConfigurationError(
                f"scenario {spec.name!r} check {name!r}: const expects "
                "need a 'value'"
            )
        if "rel_tol" not in check and "abs_tol" not in check:
            raise ConfigurationError(
                f"scenario {spec.name!r} check {name!r}: closed-form "
                "checks need rel_tol or abs_tol"
            )


# -- validating ---------------------------------------------------------


def validate_scenario(
    spec: ScenarioSpec,
    overrides: Optional[Mapping] = None,
    run: Optional[ScenarioRun] = None,
    ensemble: Optional[int] = None,
    confidence: float = 0.95,
) -> ValidationReport:
    """Run the scenario and check every observable against its reference.

    Returns the full report (pass/fail per check); raise-on-fail is the
    caller's choice via :meth:`ValidationReport.ok` or
    :func:`require_valid`.

    ``ensemble=R`` switches every check from a point estimate to an
    ensemble aggregation: the scenario runs R times at seeds
    ``spec.seed + 101 * k`` (the golden regenerator's seed scheme), each
    check's value becomes the cross-seed mean, and the check passes when
    the ``confidence`` t-interval *contains* the reference value
    (``tol_kind = "ci"``; the reported tolerance is the CI half-width).
    This gates on statistical consistency with the theory value rather
    than a fixed tolerance around one noisy realization.
    """
    validate_contract(spec)
    if ensemble is not None:
        if run is not None:
            raise ConfigurationError(
                "pass either run= or ensemble=, not both"
            )
        if ensemble < 2:
            raise ConfigurationError(
                "ensemble validation needs >= 2 members (a single run "
                "has no interval); use the point-estimate path instead"
            )
        runs = [
            run_scenario(
                spec, overrides=overrides, seed=spec.seed + 101 * k
            )
            for k in range(ensemble)
        ]
        golden = None
        results = []
        for check in spec.validation["checks"]:
            stat = measure_check_ensemble(
                runs, check, confidence=confidence
            )
            if check["expect"] == "golden":
                if golden is None:
                    golden = load_golden(spec)
                expected = float(
                    golden["observables"][check["name"]]["value"]
                )
            else:
                expected = expected_value(runs[0], check)
            results.append(
                CheckResult(
                    name=check["name"],
                    kind=check["kind"],
                    expect=check["expect"],
                    value=stat.mean,
                    expected=expected,
                    tol=(stat.hi - stat.lo) / 2.0,
                    tol_kind="ci",
                    ok=stat.contains(expected),
                )
            )
        return ValidationReport(scenario=spec.name, results=results)
    if run is None:
        run = run_scenario(spec, overrides=overrides)
    golden = None
    results = []
    for check in spec.validation["checks"]:
        value = measure_check(run, check)
        if check["expect"] == "golden":
            if golden is None:
                golden = load_golden(spec)
            entry = golden["observables"][check["name"]]
            expected = float(entry["value"])
            tol = float(entry["tol"])
            ok = abs(value - expected) <= tol
            tol_kind = "abs"
        elif "abs_tol" in check:
            expected = expected_value(run, check)
            tol = float(check["abs_tol"])
            ok = abs(value - expected) <= tol
            tol_kind = "abs"
        else:
            expected = expected_value(run, check)
            tol = float(check["rel_tol"])
            ok = abs(value - expected) <= tol * abs(expected)
            tol_kind = "rel"
        results.append(
            CheckResult(
                name=check["name"],
                kind=check["kind"],
                expect=check["expect"],
                value=value,
                expected=expected,
                tol=tol,
                tol_kind=tol_kind,
                ok=ok,
            )
        )
    return ValidationReport(scenario=spec.name, results=results)


def require_valid(
    spec: ScenarioSpec, overrides: Optional[Mapping] = None
) -> ValidationReport:
    """:func:`validate_scenario`, raising ``ValidationError`` on failure."""
    report = validate_scenario(spec, overrides=overrides)
    if not report.ok:
        raise ValidationError(report.to_text())
    return report


# -- golden regeneration ------------------------------------------------


def regenerate_golden(
    spec: ScenarioSpec,
    n_seeds: int = 3,
    write: bool = True,
) -> Dict[str, Any]:
    """Recompute a scenario's golden file from a cross-seed sweep.

    Runs the scenario at ``n_seeds`` seeds (the pinned seed plus
    deterministic alternates), records the cross-seed mean of every
    golden-expecting observable, and sets each tolerance to
    ``max(floors, 3x worst cross-seed deviation)`` -- wide enough that
    any correct seed passes with margin, tight enough that a physics
    change outside run-to-run noise fails.
    """
    golden_checks = [
        c for c in spec.validation["checks"] if c["expect"] == "golden"
    ]
    if not golden_checks:
        raise ConfigurationError(
            f"scenario {spec.name!r} has no golden-expecting checks"
        )
    if n_seeds < 2:
        raise ConfigurationError("n_seeds must be >= 2 to measure spread")
    seeds = [spec.seed + 101 * k for k in range(n_seeds)]
    samples: Dict[str, List[float]] = {c["name"]: [] for c in golden_checks}
    for seed in seeds:
        run = run_scenario(spec, seed=seed)
        for check in golden_checks:
            samples[check["name"]].append(measure_check(run, check))
    observables = {}
    for name, values in samples.items():
        arr = np.asarray(values)
        mean = float(arr.mean())
        spread = float(np.abs(arr - mean).max())
        tol = max(
            GOLDEN_ABS_FLOOR,
            GOLDEN_REL_FLOOR * abs(mean),
            GOLDEN_SPREAD_FACTOR * spread,
        )
        observables[name] = {
            "value": round(mean, 6),
            "tol": round(tol, 6),
            "spread": round(spread, 6),
        }
    blob = {
        "scenario": spec.name,
        "generator": f"python -m repro.scenarios {spec.name}",
        "seeds": seeds,
        "observables": observables,
    }
    if write:
        path = golden_path(spec)
        if path is None:
            raise ConfigurationError(
                f"scenario {spec.name!r} declares no validation.golden "
                "file name"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(blob, indent=2) + "\n")
    return blob
