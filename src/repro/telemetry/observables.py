"""Per-step physics observables derived from the live particle state.

Metrics about the *simulation* rather than the machine: is energy
drifting, how rarefied is each region of the tunnel, and how evenly is
the work spread over the shards.  The first two are the physics health
signals a DSMC practitioner watches; the last is the prerequisite for
any load-rebalancing work (you cannot rebalance slabs you cannot
measure -- the hub samples it every step at O(W) cost).

Everything here is pure computation on arrays the caller already has;
the telemetry hub decides the cadence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def energy_drift(energy: float, baseline: float) -> float:
    """Relative drift of total energy against a run baseline."""
    return (energy - baseline) / max(abs(baseline), 1.0)


def load_imbalance(loads: Sequence[float]) -> float:
    """Max-over-mean shard load factor (1.0 = perfectly balanced).

    The standard DSMC load-balance figure of merit: a W-worker step
    finishes when the most loaded shard finishes, so wall-clock
    efficiency is ~ 1/imbalance.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return 1.0
    mean = float(loads.mean())
    if mean <= 0.0:
        return 1.0
    return float(loads.max()) / mean


def band_densities(
    x: np.ndarray, width: float, n_bands: int
) -> np.ndarray:
    """Particle count per equal-width x band (one O(N) bincount)."""
    if x.size == 0:
        return np.zeros(n_bands)
    idx = np.clip(
        (x * (n_bands / width)).astype(np.int64), 0, n_bands - 1
    )
    return np.bincount(idx, minlength=n_bands).astype(np.float64)


def mean_free_path_bands(
    x_columns: List[np.ndarray],
    domain_width: float,
    domain_height: float,
    freestream_density: float,
    freestream_lambda: float,
    n_bands: int = 8,
) -> Optional[np.ndarray]:
    """Local mean free path per x band, in cell widths.

    DSMC's hard-sphere mean free path scales inversely with number
    density, so the local value follows from the freestream one and the
    band's density ratio: ``lambda_band = lambda_inf * n_inf / n_band``.
    Bands with no particles report ``inf`` (collisionless vacuum);
    a continuum configuration (``lambda_inf == 0``) returns ``None``
    since the observable is undefined there.

    ``x_columns`` is one x-position array per shard (a single entry for
    serial runs), so sharded runs compute this straight from the
    shared-memory views without a gather.
    """
    if freestream_lambda <= 0.0 or freestream_density <= 0.0:
        return None
    counts = np.zeros(n_bands)
    for x in x_columns:
        counts += band_densities(x, domain_width, n_bands)
    band_area = (domain_width / n_bands) * domain_height
    n_inf = freestream_density / 1.0  # per unit cell area
    with np.errstate(divide="ignore"):
        ratio = np.where(
            counts > 0, (n_inf * band_area) / counts, np.inf
        )
    return freestream_lambda * ratio
