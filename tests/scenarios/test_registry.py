"""Registry: lookup errors, completeness contract, CI sync, wedge identity."""

import pathlib

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    all_specs,
    get,
    names,
    register,
    validate_contract,
)

REPO = pathlib.Path(__file__).resolve().parents[2]
EXPECTED = (
    "wedge", "flat_plate", "cylinder", "channel", "impulsive_start",
    "wedge3d",
)


class TestLookup:
    def test_builtin_library_registered(self):
        assert set(EXPECTED) <= set(names())

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError) as exc:
            get("nope")
        msg = str(exc.value)
        for name in names():
            assert name in msg

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register(get("wedge"))


class TestCompleteness:
    """Every registered scenario carries a runnable acceptance contract:
    each check either compares against closed-form theory or has a
    committed golden entry (with tolerance) to compare against."""

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_contract_is_complete(self, spec):
        validate_contract(spec)

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_theory_or_golden(self, spec):
        for check in spec.validation["checks"]:
            expect = check["expect"]
            assert (
                expect.startswith("theory:")
                or expect in ("golden", "const")
            ), f"{spec.name}/{check['name']}: unknown expect {expect!r}"


class TestCIMatrixSync:
    def test_every_scenario_in_ci_matrix(self):
        """A scenario registered without a CI matrix row never gets
        validated in CI -- fail loudly here instead."""
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        lines = {ln.strip() for ln in ci.splitlines()}
        missing = [n for n in names() if f"- {n}" not in lines]
        assert not missing, (
            f"scenarios absent from the ci.yml scenario matrix: {missing}"
        )


class TestWedgeIdentity:
    """The registry-built wedge is the legacy CLI construction, bit for
    bit: same config fields, same RNG stream, same particle state."""

    def _legacy_config(self, nx, ny, mach, angle, density, lam, seed):
        from repro.core.simulation import SimulationConfig
        from repro.geometry.domain import Domain
        from repro.geometry.wedge import Wedge
        from repro.physics.freestream import Freestream

        return SimulationConfig(
            domain=Domain(nx, ny),
            freestream=Freestream(
                mach=mach, c_mp=0.14, lambda_mfp=lam, density=density
            ),
            wedge=Wedge(
                x_leading=nx / 4.9, base=nx / 3.92, angle_deg=angle
            ),
            seed=seed,
        )

    @pytest.mark.parametrize("nx,ny,mach,angle,density,lam,seed", [
        (98, 64, 4.0, 30.0, 12.0, 0.0, 1989),
        (49, 32, 4.0, 30.0, 10.0, 0.0, 7),
        (49, 32, 3.5, 25.0, 10.0, 0.5, 123),
    ])
    def test_config_fields_identical(
        self, nx, ny, mach, angle, density, lam, seed
    ):
        legacy = self._legacy_config(nx, ny, mach, angle, density, lam, seed)
        built = get("wedge").build_config(
            nx=nx, ny=ny, mach=mach, angle=angle, density=density,
            lambda_mfp=lam, seed=seed,
        )
        assert built.domain == legacy.domain
        assert built.freestream == legacy.freestream
        assert built.wedge == legacy.wedge
        assert built.seed == legacy.seed
        assert built.plunger_trigger == legacy.plunger_trigger
        assert built.wall_model == legacy.wall_model
        assert built.accommodation == legacy.accommodation
        # The only permitted delta: the metadata tag.
        assert built.scenario == "wedge" and legacy.scenario is None

    @pytest.mark.slow
    def test_short_run_particle_state_identical(self):
        from repro.core.simulation import Simulation

        legacy = Simulation(
            self._legacy_config(49, 32, 4.0, 30.0, 8.0, 0.0, 42)
        )
        built = get("wedge").build_simulation(
            {"nx": 49, "ny": 32, "density": 8.0, "seed": 42}
        )
        legacy.run(40)
        built.run(40)
        for attr in ("x", "y", "u", "v"):
            np.testing.assert_array_equal(
                getattr(legacy.particles, attr),
                getattr(built.particles, attr),
            )
