"""Integration tests for the reference simulation driver."""

import numpy as np
import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


class TestDriver:
    def test_initial_seeding_at_freestream_density(self, small_config):
        sim = Simulation(small_config)
        open_area = sim.volume_fractions.sum()
        expected = small_config.freestream.density * open_area
        assert sim.particles.n == pytest.approx(expected, rel=0.01)
        # No particle starts inside the wedge.
        w = small_config.wedge
        assert not w.inside(sim.particles.x, sim.particles.y).any()

    def test_reservoir_seeded(self, small_config):
        sim = Simulation(small_config)
        assert sim.reservoir.size == pytest.approx(
            0.1 * sim.particles.n, rel=0.02
        )

    def test_step_diagnostics_sane(self, small_config):
        sim = Simulation(small_config)
        d = sim.step()
        assert d.step == 1
        assert d.n_flow > 0
        assert 0.0 <= d.pairing_efficiency <= 1.0
        assert d.n_collisions <= d.n_candidates
        assert d.total_energy > 0

    def test_population_stays_bounded(self, small_config):
        sim = Simulation(small_config)
        n0 = sim.particles.n
        sim.run(60)
        # Steady state: inflow ~ outflow; population within 2x of seed.
        assert 0.5 * n0 < sim.particles.n < 2.0 * n0

    def test_particles_remain_in_open_region(self, small_config):
        sim = Simulation(small_config)
        sim.run(40)
        p = sim.particles
        assert p.x.min() >= 0.0 and p.x.max() < small_config.domain.width
        assert p.y.min() >= 0.0 and p.y.max() <= small_config.domain.height
        assert not small_config.wedge.inside(p.x, p.y).any()

    def test_determinism_same_seed(self, small_config):
        a = Simulation(small_config)
        b = Simulation(small_config)
        a.run(10)
        b.run(10)
        assert np.array_equal(a.particles.x, b.particles.x)
        assert np.array_equal(a.particles.u, b.particles.u)

    def test_different_seeds_differ(self, small_domain, small_wedge, rarefied_freestream):
        cfg_a = SimulationConfig(
            domain=small_domain, freestream=rarefied_freestream,
            wedge=small_wedge, seed=1,
        )
        cfg_b = SimulationConfig(
            domain=small_domain, freestream=rarefied_freestream,
            wedge=small_wedge, seed=2,
        )
        a, b = Simulation(cfg_a), Simulation(cfg_b)
        a.run(5)
        b.run(5)
        assert not np.array_equal(a.particles.x, b.particles.x)

    def test_sampling_accumulates(self, small_config):
        sim = Simulation(small_config)
        sim.run(5)
        assert sim.sampler.steps == 0
        sim.run(5, sample=True)
        assert sim.sampler.steps == 5
        rho = sim.density_ratio_field()
        assert rho.shape == small_config.domain.shape

    def test_run_validates_steps(self, small_config):
        with pytest.raises(ConfigurationError):
            Simulation(small_config).run(0)

    def test_empty_tunnel_keeps_freestream(self, box_config):
        # Without a body the tunnel must hold freestream conditions:
        # uniform density ~1, bulk velocity ~U everywhere.
        sim = Simulation(box_config)
        sim.run(40)
        sim.run(30, sample=True)
        rho = sim.density_ratio_field()
        interior = rho[3:-3, 3:-3]
        assert interior.mean() == pytest.approx(1.0, abs=0.05)
        assert interior.std() < 0.25
        u, v, w = sim.sampler.mean_velocity()
        assert u[3:-3, 3:-3].mean() == pytest.approx(
            box_config.freestream.speed, rel=0.05
        )

    def test_near_continuum_collides_half_of_candidates_pop(
        self, small_domain, small_wedge, continuum_freestream
    ):
        # "all collision candidates must collide and the number of
        # collisions in a cell is just equal to half the number of
        # particles in the cell."
        cfg = SimulationConfig(
            domain=small_domain,
            freestream=continuum_freestream,
            wedge=small_wedge,
            seed=3,
        )
        sim = Simulation(cfg)
        d = sim.step()
        assert d.n_collisions == d.n_candidates
        assert d.mean_collision_probability == 1.0

    def test_config_validation(self, small_domain, rarefied_freestream):
        with pytest.raises(Exception):
            SimulationConfig(
                domain=small_domain,
                freestream=rarefied_freestream,
                wedge=Wedge(x_leading=25, base=10),  # pokes out
            )
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                domain=small_domain,
                freestream=Freestream(lambda_mfp=0.1),  # P too high
                wedge=None,
            )
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                domain=small_domain,
                freestream=rarefied_freestream,
                wedge=None,
                reservoir_fraction=1.5,
            )


class TestConservationInStep:
    def test_collisions_conserve_energy_within_step(self, box_config):
        # The collision sub-step must be exactly conservative; boundary
        # and plunger work changes energy, so test the collision phase
        # in isolation by comparing before/after with motion frozen.
        sim = Simulation(box_config)
        sim.run(5)
        parts = sim.particles
        from repro.core.cells import assign_cells, cell_populations
        from repro.core.collision import collide_pairs
        from repro.core.pairing import even_odd_pairs
        from repro.core.selection import select_collisions
        from repro.core.sortstep import sort_by_cell

        assign_cells(parts, box_config.domain)
        sort_by_cell(parts, rng=sim.rng)
        pairs = even_odd_pairs(parts.cell)
        counts = cell_populations(parts.cell, box_config.domain.n_cells)
        sel = select_collisions(
            parts, pairs, box_config.freestream, box_config.model,
            counts, rng=sim.rng,
        )
        e0, p0 = parts.total_energy(), parts.momentum()
        collide_pairs(
            parts, pairs.first[sel.accept], pairs.second[sel.accept],
            rng=sim.rng,
        )
        assert parts.total_energy() == pytest.approx(e0, rel=1e-12)
        assert np.allclose(parts.momentum(), p0, atol=1e-9)
