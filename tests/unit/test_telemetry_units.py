"""Unit tests for the telemetry subsystem and the perf-ledger fixes."""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perf import PerfLedger
from repro.telemetry import (
    EventStream,
    MetricsRegistry,
    SpanTracer,
    US_PER_PARTICLE_BUCKETS,
    validate_trace,
)
from repro.telemetry import observables
from repro.telemetry.exporters import MetricsServer, write_prometheus_snapshot
from repro.telemetry.report import render, render_diff, summarize
from repro.telemetry.spans import (
    RING_FIELDS,
    RING_STATE,
    WORKER_SPAN_NAMES,
    drain_ring,
    ring_append,
)


# -- metrics registry ---------------------------------------------------


class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total")
        c.inc()
        c.inc(4)
        assert reg.counter("repro_things_total").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("c").inc(-1)

    def test_gauge_tracks_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_pop")
        g.set(10)
        g.set(3)
        assert g.value == 3
        assert g.high_water == 10

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_us")
        for v in (0.1, 1.5, 100.0):
            h.observe(v)
        assert h.count == 3 and sum(h.counts) == 3
        assert len(h.counts) == len(US_PER_PARTICLE_BUCKETS) + 1
        assert h.counts[0] == 1  # 0.1 <= 0.25
        assert h.counts[-1] == 1  # 100 lands in the +Inf tail
        assert h.mean() == pytest.approx((0.1 + 1.5 + 100.0) / 3)

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.gauge("repro_load", labels={"shard": "0"}).set(7)
        reg.gauge("repro_load", labels={"shard": "1"}).set(9)
        assert reg.gauge("repro_load", labels={"shard": "0"}).value == 7
        assert reg.gauge("repro_load", labels={"shard": "1"}).value == 9

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_steps_total", help="steps").inc(3)
        reg.gauge("repro_pop", labels={"shard": "0"}).set(42)
        reg.histogram("repro_us").observe(1.0)
        text = reg.to_prometheus()
        assert "# TYPE repro_steps_total counter" in text
        assert "repro_steps_total 3" in text
        assert 'repro_pop{shard="0"} 42' in text
        assert 'repro_us_bucket{le="+Inf"} 1' in text
        assert "repro_us_count 1" in text
        assert "repro_us_sum" in text
        # Every non-comment line is "name{labels} value"
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            assert len(line.rsplit(" ", 1)) == 2

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(2.0)
        json.dumps(reg.snapshot())


# -- spans --------------------------------------------------------------


class TestSpans:
    def test_ring_roundtrip(self):
        ring = np.zeros((4, RING_FIELDS))
        state = np.zeros(RING_STATE, dtype=np.int64)
        ring_append(ring, state, 0, 1.0, 2.0, 5, 1, 999)
        ring_append(ring, state, 1, 2.0, 3.5, 5, 1, 999)
        rows = drain_ring(ring, state)
        assert rows.shape == (2, RING_FIELDS)
        assert rows[0][0] == 0 and rows[1][0] == 1
        assert state[0] == 0  # drained
        # drained again: empty
        assert drain_ring(ring, state).shape[0] == 0

    def test_ring_drops_when_full(self):
        ring = np.zeros((1, RING_FIELDS))
        state = np.zeros(RING_STATE, dtype=np.int64)
        ring_append(ring, state, 0, 0.0, 1.0, 0, 0, 1)
        ring_append(ring, state, 0, 1.0, 2.0, 0, 0, 1)
        assert state[0] == 1 and state[1] == 1  # one kept, one dropped

    def test_tracer_absorbs_ring_rows(self):
        tracer = SpanTracer(pid=1)
        rows = np.array([[2.0, 1.0, 1.5, 7.0, 0.0, 42.0]])
        tracer.absorb_ring_rows(rows)
        span = tracer.spans[0]
        assert span["name"] == WORKER_SPAN_NAMES[2]
        assert span["pid"] == 42 and span["step"] == 7
        assert span["dur"] == pytest.approx(0.5)

    def test_stamp_pending(self):
        tracer = SpanTracer(pid=1)
        tracer.record("motion", 0.0, 1.0)
        tracer.record("sort", 1.0, 2.0)
        tracer.stamp_pending(9)
        assert all(s["step"] == 9 for s in tracer.spans)
        tracer.record("motion", 2.0, 3.0)
        tracer.stamp_pending(10)
        assert tracer.spans[-1]["step"] == 10
        assert tracer.spans[0]["step"] == 9  # earlier stamps untouched

    def test_chrome_trace_valid_and_labelled(self):
        tracer = SpanTracer(pid=1)
        tracer.record("motion", 10.0, 10.5, step=1)
        tracer.absorb_ring_rows(np.array([[0.0, 10.0, 10.2, 1.0, 1.0, 77.0]]))
        trace = tracer.chrome_trace()
        assert validate_trace(trace) == []
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 2 and len(ms) == 2
        assert all(e["dur"] >= 0 for e in xs)
        names = {m["args"]["name"] for m in ms}
        assert "driver" in names and "shard 1" in names

    def test_validate_trace_catches_problems(self):
        bad = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 0, "name": "a", "ts": 0},
                {"ph": "X", "pid": 1, "tid": 0, "name": "b", "ts": 0,
                 "dur": -1},
            ]
        }
        problems = validate_trace(bad)
        assert any("negative" in p for p in problems)
        assert any("unclosed" in p for p in problems)
        assert validate_trace({"traceEvents": None}) == [
            "traceEvents is not a list"
        ]

    def test_tracer_bounds_memory(self):
        tracer = SpanTracer(max_spans=2, pid=1)
        for i in range(5):
            tracer.record("motion", i, i + 1)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


# -- event stream -------------------------------------------------------


class TestEventStream:
    def test_append_load_roundtrip(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit("metrics", step=1, n_flow=100)
        stream.append({"kind": "audit", "ok": True})
        loaded = EventStream.load(tmp_path)
        assert [e["kind"] for e in loaded] == ["metrics", "audit"]
        assert all("time" in e for e in loaded)

    def test_load_missing_is_empty(self, tmp_path):
        assert EventStream.load(tmp_path / "nope") == []

    def test_journal_subclass_uses_own_file(self, tmp_path):
        from repro.resilience.supervisor import RunJournal

        journal = RunJournal(tmp_path)
        journal.append({"kind": "recovery", "step": 3})
        assert (tmp_path / "journal.jsonl").exists()
        assert not (tmp_path / "events.jsonl").exists()
        assert RunJournal.load(tmp_path)[0]["step"] == 3
        assert EventStream.load(tmp_path) == []


# -- exporters ----------------------------------------------------------


class TestExporters:
    def test_prometheus_snapshot_file(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_steps_total").inc(2)
        path = tmp_path / "metrics.prom"
        write_prometheus_snapshot(reg, path)
        assert "repro_steps_total 2" in path.read_text()
        assert not path.with_suffix(".prom.tmp").exists()

    def test_http_endpoint(self):
        reg = MetricsRegistry()
        reg.counter("repro_steps_total").inc(7)
        server = MetricsServer(reg, port=0)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            body = urllib.request.urlopen(url, timeout=5).read().decode()
            assert "repro_steps_total 7" in body
            snap = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/snapshot.json", timeout=5
                ).read()
            )
            assert "repro_steps_total" in snap
        finally:
            server.close()
        server.close()  # idempotent


# -- physics observables ------------------------------------------------


class TestObservables:
    def test_energy_drift(self):
        assert observables.energy_drift(101.0, 100.0) == pytest.approx(0.01)
        # Zero baseline: the denominator clamps to 1 (absolute drift).
        assert observables.energy_drift(5.0, 0.0) == pytest.approx(5.0)

    def test_load_imbalance(self):
        assert observables.load_imbalance([10, 10]) == pytest.approx(1.0)
        assert observables.load_imbalance([30, 10]) == pytest.approx(1.5)
        assert observables.load_imbalance([]) == 1.0
        assert observables.load_imbalance([0, 0]) == 1.0

    def test_mean_free_path_bands_uniform(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.0, 80.0, size=40_000)
        lam = observables.mean_free_path_bands(
            [x], 80.0, 10.0, freestream_density=50.0,
            freestream_lambda=2.0, n_bands=4,
        )
        # Uniform at freestream density -> every band near lambda_inf.
        assert lam.shape == (4,)
        assert np.allclose(lam, 2.0, rtol=0.1)

    def test_mean_free_path_continuum_is_none(self):
        assert (
            observables.mean_free_path_bands(
                [np.array([1.0])], 10.0, 5.0, 10.0, 0.0
            )
            is None
        )

    def test_mean_free_path_empty_band_is_inf(self):
        x = np.full(100, 0.5)  # everything in the first band
        lam = observables.mean_free_path_bands(
            [x], 10.0, 5.0, 2.0, 1.0, n_bands=2
        )
        assert np.isfinite(lam[0])
        assert np.isinf(lam[1])


# -- the report CLI -----------------------------------------------------


def _write_stream(run_dir, us=1.0, recoveries=0):
    stream = EventStream(run_dir)
    stream.emit("run_start", step=0, n_flow=1000, workers=2, seed=1)
    stream.emit(
        "metrics", step=10, n_flow=1000, us_per_particle=us,
        energy_drift=1e-3, load_imbalance=1.1,
        fractions={"motion": 0.14, "sort": 0.27,
                   "selection": 0.20, "collision": 0.39},
    )
    stream.emit("span", name="motion", ts=0.0, dur=0.1, step=10,
                tid=0, pid=1)
    stream.emit("audit", step=10, ok=True)
    for _ in range(recoveries):
        stream.emit("recovery", step=10, error="WorkerCrashError")
    stream.emit("checkpoint", step=10, path="ckpt_00000010.npz")
    stream.emit("run_end", snapshot={
        "metrics": {"repro_steps_total": {"value": 10}}
    })


class TestReport:
    def test_summarize(self, tmp_path):
        _write_stream(tmp_path, recoveries=2)
        s = summarize(tmp_path)
        assert s["steps"] == 10
        assert s["workers"] == 2
        assert s["us_per_particle_mean"] == pytest.approx(1.0)
        assert s["spans"] == 1
        assert s["audits"] == 1 and s["audit_failures"] == 0
        assert s["recoveries"] == 2
        assert s["checkpoints"] == 1

    def test_render_and_diff(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        _write_stream(a, us=1.0)
        _write_stream(b, us=2.0)
        out = render(summarize(a))
        assert "us/particle" in out and "14/27/20/39" in out
        diff = render_diff(summarize(a), summarize(b))
        assert "+100.0%" in diff

    def test_main_exit_codes(self, tmp_path, capsys):
        from repro.telemetry.report import main

        assert main([str(tmp_path / "missing")]) == 2
        _write_stream(tmp_path)
        assert main([str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["steps"] == 10

    def test_zero_step_run_reports_zero(self, tmp_path):
        # Regression: ``if not summary["steps"]`` conflated a reported
        # step count of 0 with "metric absent" and fell back to the
        # last metrics step.  A genuine zero-step run must report 0.
        stream = EventStream(tmp_path)
        stream.emit("run_start", step=0, n_flow=10, workers=1, seed=1)
        stream.emit("metrics", step=40, n_flow=10)
        stream.emit("run_end", snapshot={
            "metrics": {"repro_steps_total": {"value": 0}}
        })
        assert summarize(tmp_path)["steps"] == 0

    def test_missing_step_metric_falls_back_to_last_step(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit("run_start", step=0, n_flow=10, workers=1, seed=1)
        stream.emit("metrics", step=40, n_flow=10)
        stream.emit("run_end", snapshot={"metrics": {}})
        assert summarize(tmp_path)["steps"] == 40

    def test_diff_from_zero_baseline_shows_absolute_delta(self, tmp_path):
        # Regression: a relative delta from a baseline of exactly 0 is
        # undefined, and render_diff hid the regression as "-".
        a, b = tmp_path / "a", tmp_path / "b"
        _write_stream(a, recoveries=0)
        _write_stream(b, recoveries=3)
        diff = render_diff(summarize(a), summarize(b))
        line = next(ln for ln in diff.splitlines() if "recoveries" in ln)
        assert "+3" in line

    def test_summarize_counts_rebalance_events(self, tmp_path):
        stream = EventStream(tmp_path)
        stream.emit("run_start", step=0, n_flow=10, workers=2, seed=1)
        stream.emit("rebalance", step=10, executed=True, columns_moved=3)
        stream.emit("rebalance", step=20, executed=False,
                    skipped="channel capacity")
        stream.emit("run_end", snapshot={
            "metrics": {"repro_steps_total": {"value": 20}}
        })
        s = summarize(tmp_path)
        assert s["rebalances"] == 1
        assert s["rebalances_skipped"] == 1
        assert s["rebalance_columns_moved"] == 3
        assert "rebalances" in render(s)


# -- perf ledger fixes --------------------------------------------------


class TestPerfLedger:
    def test_reset_under_open_phase_discards_charge(self):
        perf = PerfLedger()
        with perf.phase("motion"):
            perf.reset()  # e.g. warm-up reset while a phase is open
        assert perf.phase_seconds("motion") == 0.0
        assert perf.total_seconds() == 0.0
        # The ledger still works after the interrupted phase.
        with perf.phase("sort"):
            pass
        assert perf.phase_seconds("sort") > 0.0

    def test_us_per_particle_uses_step_series(self):
        perf = PerfLedger()
        for n in (100, 300):
            perf.record("motion", 1e-3)
            perf.end_step(n_particles=n)
        assert perf.particle_steps == 400
        us = perf.us_per_particle()
        # 2e-3 s over 400 particle-steps = 5 us/particle/step.
        assert us["motion"] == pytest.approx(5.0)

    def test_us_per_particle_single_count_removed(self):
        # The deprecated one-population signature is gone: the count
        # series reported through end_step is the only denominator.
        perf = PerfLedger()
        perf.record("motion", 1e-3)
        perf.end_step(n_particles=100)
        with pytest.raises(TypeError):
            perf.us_per_particle(100)

    def test_summary_includes_series_denominator(self):
        perf = PerfLedger()
        perf.record("motion", 2e-3)
        perf.end_step(n_particles=200)
        s = perf.summary()
        assert s["particle_steps"] == 200
        assert s["us_per_particle"]["motion"] == pytest.approx(10.0)

    def test_phase_records_span_when_traced(self):
        perf = PerfLedger()
        perf.tracer = SpanTracer(pid=1)
        with perf.phase("collision"):
            pass
        assert perf.tracer.spans[0]["name"] == "collision"
