"""INCREMENTAL -- temporal-coherence sort kernel vs the counting hotpath.

Runs the paper's Mach-4 wedge problem (~240k particles at the benchmark
density) twice from the same seed: once on the PR-1 hot path
(``sort_kernel="counting"``: per-step randomized counting sort +
even/odd pairing + split selection/collision kernels) and once on the
temporal-coherence path (``sort_kernel="incremental"``: indexed
canonical order maintained across steps + per-cell reflection pairing +
the fused selection/collision kernel).  Reports the step-loop speedup,
both per-phase ledgers, the measured per-step moved fraction (the
temporal-coherence statistic the kernel exploits), and repair-vs-rebuild
micro-timings over synthetic moved fractions -- the data behind the
``DEFAULT_REBUILD_THRESHOLD`` crossover.

Standalone: ``PYTHONPATH=src python benchmarks/bench_incremental.py``
writes ``BENCH_incremental.json`` at the repository root.

CI smoke mode: ``--steps 5 --check-against BENCH_incremental.json``
runs a short measurement and exits non-zero if the incremental path's
us/particle/step regressed more than ``--tolerance`` (default 25%)
against the committed record.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sortstep import DEFAULT_REBUILD_THRESHOLD, IncrementalSorter
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.perf import PAPER_PHASES
from repro.physics.freestream import Freestream

WARMUP_STEPS = 5
TIMED_STEPS = 30
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Synthetic moved fractions for the repair-vs-rebuild crossover sweep.
CROSSOVER_FRACTIONS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5)


def default_config(density: float = 40.0, seed: int = 1989) -> SimulationConfig:
    """The paper's Mach-4 wedge geometry at the benchmark density."""
    return SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
        ),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=seed,
    )


def _timed_run(kernel: str, config: SimulationConfig, steps: int):
    cfg = dataclasses.replace(config, sort_kernel=kernel)
    sim = Simulation(cfg, hotpath=True)
    sim.run(WARMUP_STEPS)
    sim.perf.reset()
    moved = []
    rebuilds = 0
    step_times = []
    for _ in range(steps):
        t0 = time.perf_counter()
        diag = sim.step()
        step_times.append(time.perf_counter() - t0)
        if diag.sort_moved_fraction is not None:
            moved.append(diag.sort_moved_fraction)
            rebuilds += diag.sort_rebuilds or 0
    # Median per-step wall time: shared CI machines have multi-second
    # slow windows that would otherwise dominate a single mean.
    elapsed = float(np.median(step_times)) * steps
    return sim, elapsed, moved, rebuilds


def _crossover_sweep(config: SimulationConfig) -> list:
    """Repair vs rebuild wall-clock at synthetic moved fractions.

    Takes a converged population, perturbs exactly ``f * n`` cached
    cell entries to random cells, and times one ``update`` with the
    threshold forced to accept repair vs one forced full rebuild --
    the measurement behind the DEFAULT_REBUILD_THRESHOLD default.
    """
    sim = Simulation(config, hotpath=True)
    sim.run(WARMUP_STEPS)
    parts = sim.particles
    n = parts.n
    n_cells = config.domain.n_cells
    rng = np.random.default_rng(7)
    rows = []
    for f in CROSSOVER_FRACTIONS:
        k = max(1, int(f * n))
        t_repair = []
        t_rebuild = []
        for trial in range(3):
            idx = rng.choice(n, size=k, replace=False)
            new_cells = rng.integers(0, n_cells, size=k)
            for force_rebuild in (False, True):
                threshold = 1.0 if not force_rebuild else 0.0
                s = IncrementalSorter(n_cells, rebuild_threshold=threshold)
                s.step(parts)  # prime the cached order
                saved = parts.cell[idx].copy()
                parts.cell[idx] = new_cells
                s.detect(parts)
                t0 = time.perf_counter()
                s.update(parts)
                dt = time.perf_counter() - t0
                (t_rebuild if force_rebuild else t_repair).append(dt)
                parts.cell[idx] = saved
                parts.order_listener = None
        rows.append(
            {
                "moved_fraction": f,
                "repair_ms": 1e3 * min(t_repair),
                "rebuild_ms": 1e3 * min(t_rebuild),
            }
        )
    return rows


def _speedup_vs_pr1(inc_us_per_particle_step: float):
    """Speedup against the *committed* PR-1 hotpath record, if present.

    The live counting run above re-measures the baseline on today's
    machine; this figure instead anchors against the
    ``BENCH_step_hotpath.json`` snapshot the counting kernel was tuned
    to, so the two records stay comparable across sessions.
    """
    path = REPO_ROOT / "BENCH_step_hotpath.json"
    if not path.exists():
        return None
    ref = (
        json.loads(path.read_text())
        .get("hotpath", {})
        .get("us_per_particle_step")
    )
    if not ref:
        return None
    return ref / inc_us_per_particle_step


def run_benchmark(
    config: SimulationConfig | None = None,
    steps: int = TIMED_STEPS,
    sweep: bool = True,
) -> dict:
    """Measure both kernels and return the comparison record."""
    config = config or default_config()
    cnt_sim, cnt_s, _, _ = _timed_run("counting", config, steps)
    cnt_per_step = cnt_sim.perf.per_step_seconds()
    cnt_fracs = cnt_sim.perf.fractions()
    inc_sim, inc_s, moved, rebuilds = _timed_run("incremental", config, steps)
    inc_per_step = inc_sim.perf.per_step_seconds()
    inc_fracs = inc_sim.perf.fractions()

    n = inc_sim.particles.n
    result = {
        "bench": "incremental",
        "config": {
            "domain": [config.domain.nx, config.domain.ny],
            "mach": config.freestream.mach,
            "density": config.freestream.density,
            "lambda_mfp": config.freestream.lambda_mfp,
            "seed": config.seed,
        },
        "n_particles": n,
        "timed_steps": steps,
        "counting": {
            "steps_per_sec": steps / cnt_s,
            "us_per_particle_step": cnt_s / steps / n * 1e6,
            "phase_seconds_per_step": cnt_per_step,
            "phase_fractions": cnt_fracs,
        },
        "incremental": {
            "steps_per_sec": steps / inc_s,
            "us_per_particle_step": inc_s / steps / n * 1e6,
            "phase_seconds_per_step": inc_per_step,
            "phase_fractions": inc_fracs,
            "moved_fraction_mean": (
                sum(moved) / len(moved) if moved else None
            ),
            "moved_fraction_min": min(moved) if moved else None,
            "moved_fraction_max": max(moved) if moved else None,
            "rebuilds": rebuilds,
        },
        "speedup": cnt_s / inc_s,
        "speedup_vs_pr1": _speedup_vs_pr1(inc_s / steps / n * 1e6),
        "sort_seconds_ratio": (
            inc_per_step.get("sort", 0.0)
            / cnt_per_step.get("sort", 1e-12)
        ),
        "rebuild_threshold_default": DEFAULT_REBUILD_THRESHOLD,
        "paper_phases": list(PAPER_PHASES),
    }
    if sweep:
        result["repair_crossover"] = _crossover_sweep(config)
    return result


def check_against(result: dict, baseline_path: pathlib.Path,
                  tolerance: float) -> bool:
    """True if the incremental path is within ``tolerance`` of baseline."""
    baseline = json.loads(baseline_path.read_text())
    ref = baseline["incremental"]["us_per_particle_step"]
    got = result["incremental"]["us_per_particle_step"]
    ratio = got / ref
    print(
        f"regression check: {got:.3f} vs baseline {ref:.3f} "
        f"us/particle/step ({ratio:.2f}x, tolerance {1 + tolerance:.2f}x)"
    )
    return ratio <= 1.0 + tolerance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--steps", type=int, default=TIMED_STEPS,
        help="timed steps per kernel (smoke runs use ~5)",
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help="committed BENCH_incremental.json to compare with; "
             "exits 1 on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown (default 0.25)",
    )
    args = parser.parse_args(argv)

    smoke = args.check_against is not None
    result = run_benchmark(steps=args.steps, sweep=not smoke)
    if not smoke:
        out = REPO_ROOT / "BENCH_incremental.json"
        out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"particles: {result['n_particles']}")
    for name in ("counting", "incremental"):
        r = result[name]
        print(
            "{:<11s}: {:6.2f} steps/s  ({:.3f} us/particle/step)".format(
                name, r["steps_per_sec"], r["us_per_particle_step"]
            )
        )
        for pname, frac in r["phase_fractions"].items():
            print(
                "  {:<10s} {:6.1%}  ({:.2f} ms/step)".format(
                    pname, frac, r["phase_seconds_per_step"][pname] * 1e3
                )
            )
    print("speedup : {:.2f}x".format(result["speedup"]))
    if result.get("speedup_vs_pr1") is not None:
        print(
            "speedup vs committed PR-1 record: {:.2f}x".format(
                result["speedup_vs_pr1"]
            )
        )
    inc = result["incremental"]
    if inc["moved_fraction_mean"] is not None:
        print(
            "moved fraction: mean {:.3f} (min {:.3f} / max {:.3f}), "
            "{} rebuilds in {} steps".format(
                inc["moved_fraction_mean"],
                inc["moved_fraction_min"],
                inc["moved_fraction_max"],
                inc["rebuilds"],
                result["timed_steps"],
            )
        )
    for row in result.get("repair_crossover", []):
        print(
            "  f={moved_fraction:<6g} repair {repair_ms:7.3f} ms  "
            "rebuild {rebuild_ms:7.3f} ms".format(**row)
        )
    if smoke:
        if not check_against(result, args.check_against, args.tolerance):
            print("FAIL: incremental kernel slower than committed baseline")
            return 1
        print("OK: within tolerance of the committed baseline")
    else:
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
