"""Scan (parallel prefix) primitives, plain and segmented.

Scans are the workhorse collective of the Connection Machine (Hillis &
Steele, "Data Parallel Algorithms", CACM 1986); the paper uses them to
obtain per-cell populations for the collision selection rule ("This
requires specific knowledge of the cell density which can be best
obtained on the Connection Machine by making use of the scan
functions").

All functions operate on 1-D NumPy arrays and are implemented with
vectorized accumulation (``cumsum`` / ``maximum.accumulate``) -- the
emulation computes the same *result* as the log-depth hardware scan and
charges the hardware's cost through an optional
:class:`~repro.cm.timing.CostModel`.

Segmented scans restart at every index where ``segment_heads`` is true.
In the simulation a segment is one grid cell's run of (sorted)
particles, so e.g. a segmented plus-scan of ones yields each particle's
intra-cell rank and a segmented copy-scan broadcasts per-cell values to
all particles of the cell.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.cm.field import Field
from repro.cm.timing import CostModel
from repro.errors import MachineError

ArrayOrField = Union[np.ndarray, Field]


def _unwrap(x: ArrayOrField) -> np.ndarray:
    return x.data if isinstance(x, Field) else np.asarray(x)


def _charge(cost: Optional[CostModel], bits: int, nscans: float = 1.0) -> None:
    if cost is not None:
        cost.scan(bits=bits, nscans=nscans)


def _validate_heads(values: np.ndarray, heads: np.ndarray) -> np.ndarray:
    heads = np.asarray(heads, dtype=bool)
    if heads.shape != values.shape:
        raise MachineError("segment_heads must match values in shape")
    if heads.size and not heads[0]:
        raise MachineError("segment_heads[0] must be True (first segment)")
    return heads


# ---------------------------------------------------------------------------
# Unsegmented scans
# ---------------------------------------------------------------------------

def plus_scan(
    values: ArrayOrField,
    inclusive: bool = True,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Prefix sum.  Exclusive variant shifts in a leading zero."""
    v = _unwrap(values)
    _charge(cost, bits)
    acc = np.cumsum(v, dtype=np.int64 if v.dtype.kind in "iu" else None)
    if inclusive:
        return acc.astype(v.dtype, copy=False)
    out = np.empty_like(acc)
    out[0] = 0
    out[1:] = acc[:-1]
    return out.astype(v.dtype, copy=False)


def max_scan(
    values: ArrayOrField,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Inclusive running maximum."""
    v = _unwrap(values)
    _charge(cost, bits)
    return np.maximum.accumulate(v)


def min_scan(
    values: ArrayOrField,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Inclusive running minimum."""
    v = _unwrap(values)
    _charge(cost, bits)
    return np.minimum.accumulate(v)


def copy_scan(
    values: ArrayOrField,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Broadcast the first element to every position."""
    v = _unwrap(values)
    _charge(cost, bits)
    if v.size == 0:
        return v.copy()
    return np.full_like(v, v[0])


# ---------------------------------------------------------------------------
# Segmented scans
# ---------------------------------------------------------------------------

def segmented_plus_scan(
    values: ArrayOrField,
    segment_heads: np.ndarray,
    inclusive: bool = True,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Prefix sum restarting at every segment head.

    Implemented as a global cumsum minus the cumsum value carried in at
    each segment's head -- the standard O(1)-pass vectorized equivalent
    of the hardware segmented scan.
    """
    v = _unwrap(values)
    if v.size == 0:
        _charge(cost, bits)
        return v.copy()
    heads = _validate_heads(v, segment_heads)
    _charge(cost, bits)
    wide = np.cumsum(v, dtype=np.int64 if v.dtype.kind in "iu" else None)
    # Value of the global cumsum just *before* each segment start,
    # broadcast over the segment and subtracted out.
    seg_id = np.cumsum(heads) - 1
    head_idx = np.flatnonzero(heads)
    carried = np.zeros(head_idx.size, dtype=wide.dtype)
    carried[1:] = wide[head_idx[1:] - 1]
    acc = wide - carried[seg_id]
    if inclusive:
        return acc.astype(v.dtype, copy=False)
    out = np.empty_like(acc)
    out[0] = 0
    out[1:] = acc[:-1]
    out[heads] = 0
    return out.astype(v.dtype, copy=False)


def segmented_copy_scan(
    values: ArrayOrField,
    segment_heads: np.ndarray,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Broadcast each segment head's value across its segment."""
    v = _unwrap(values)
    if v.size == 0:
        _charge(cost, bits)
        return v.copy()
    heads = _validate_heads(v, segment_heads)
    _charge(cost, bits)
    head_idx = np.flatnonzero(heads)
    seg_id = np.cumsum(heads) - 1
    return v[head_idx[seg_id]]


def segmented_max_scan(
    values: ArrayOrField,
    segment_heads: np.ndarray,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Running maximum restarting at every segment head.

    Vectorized via an offset trick: add a per-segment offset large
    enough to dominate, take the global running max, subtract.
    Falls back to an exact two-pass formulation for float inputs.
    """
    v = _unwrap(values)
    if v.size == 0:
        _charge(cost, bits)
        return v.copy()
    heads = _validate_heads(v, segment_heads)
    _charge(cost, bits)
    seg_id = np.cumsum(heads) - 1
    if v.dtype.kind in "iu":
        v64 = v.astype(np.int64)
        span = int(v64.max() - v64.min()) + 1
        shifted = v64 + seg_id.astype(np.int64) * span
        return (np.maximum.accumulate(shifted) - seg_id * span).astype(
            v.dtype, copy=False
        )
    span = float(np.max(v) - np.min(v)) + 1.0
    shifted = v.astype(np.float64) + seg_id * span
    return np.maximum.accumulate(shifted) - seg_id * span


def segmented_min_scan(
    values: ArrayOrField,
    segment_heads: np.ndarray,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Running minimum restarting at every segment head.

    Part of the "richer set of scan functions in the Version 5.0
    software" the paper's Future Work wants for faster candidate
    identification.
    """
    v = _unwrap(values)
    if v.size == 0:
        _charge(cost, bits)
        return v.copy()
    _validate_heads(v, segment_heads)
    return -segmented_max_scan(-v, segment_heads, cost=cost, bits=bits)


def segmented_or_scan(
    flags: ArrayOrField,
    segment_heads: np.ndarray,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Running logical OR within segments (1-bit scan)."""
    v = _unwrap(flags).astype(np.int64)
    if v.size == 0:
        _charge(cost, 1)
        return v.astype(bool)
    _validate_heads(v, segment_heads)
    return segmented_max_scan(v, segment_heads, cost=cost, bits=1).astype(bool)


def segmented_and_scan(
    flags: ArrayOrField,
    segment_heads: np.ndarray,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Running logical AND within segments (1-bit scan)."""
    v = _unwrap(flags).astype(np.int64)
    if v.size == 0:
        _charge(cost, 1)
        return v.astype(bool)
    _validate_heads(v, segment_heads)
    return segmented_min_scan(v, segment_heads, cost=cost, bits=1).astype(bool)


def enumerate_active(
    active: np.ndarray,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Rank of each active VP among the active set (-1 for inactive).

    The `enumerate` collective: an exclusive plus-scan of the context
    flags.  The building block of :func:`pack`.
    """
    a = np.asarray(active, dtype=bool)
    _charge(cost, 32)
    ranks = np.cumsum(a) - 1
    return np.where(a, ranks, -1)


def pack(
    values: ArrayOrField,
    active: np.ndarray,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Compress the active VPs' values to the front (the `pack` op).

    On the CM this is enumerate + router send; the paper expects the
    richer 5.0 scans to "decrease the time spent in identifying
    collision candidates" via exactly this compression (sending only
    occupied-pair slots to the collision routine).
    """
    v = _unwrap(values)
    a = np.asarray(active, dtype=bool)
    if v.shape[0] != a.shape[0]:
        raise MachineError("values and active mask must align")
    if cost is not None:
        cost.scan(bits=32, nscans=1)
        n_active = int(a.sum())
        if n_active:
            src = np.flatnonzero(a)
            cost.route(src, np.arange(n_active), payload_bits=bits)
    return v[a]


def unpack(
    packed: np.ndarray,
    active: np.ndarray,
    fill,
    cost: Optional[CostModel] = None,
    bits: int = 32,
) -> np.ndarray:
    """Scatter packed values back to their active VP slots."""
    a = np.asarray(active, dtype=bool)
    packed = np.asarray(packed)
    n_active = int(a.sum())
    if packed.shape[0] != n_active:
        raise MachineError(
            f"packed length {packed.shape[0]} != active count {n_active}"
        )
    if cost is not None:
        cost.scan(bits=32, nscans=1)
        if n_active:
            cost.route(
                np.arange(n_active), np.flatnonzero(a), payload_bits=bits
            )
    out = np.full(a.shape[0], fill, dtype=packed.dtype)
    out[a] = packed
    return out


def segment_counts(
    segment_heads: np.ndarray,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Per-element count of its segment's total population.

    The paper's cell-density computation: a segmented plus-scan of ones
    (backwards + forwards in hardware; one pass here) broadcast to all
    members.  Returns, for each element, the size of its segment.
    """
    heads = np.asarray(segment_heads, dtype=bool)
    if heads.size == 0:
        _charge(cost, 32)
        return np.zeros(0, dtype=np.int64)
    if not heads[0]:
        raise MachineError("segment_heads[0] must be True")
    _charge(cost, 32, nscans=2.0)
    head_idx = np.flatnonzero(heads)
    sizes = np.diff(np.concatenate((head_idx, [heads.size])))
    seg_id = np.cumsum(heads) - 1
    return sizes[seg_id]
