"""Unit tests for the processor-mapping comparison (paper's argument)."""

import numpy as np
import pytest

from repro.cm.mapping import (
    MappingComparison,
    compare_mappings,
    neighbour_exchange_events,
)
from repro.errors import MachineError


class TestNeighbourEvents:
    def test_paper_counts(self):
        # "In two dimensions this implies eight distinct communication
        # events ... in three dimensions where a cell must communicate
        # with twenty-six neighbours."
        assert neighbour_exchange_events(2) == 8
        assert neighbour_exchange_events(3) == 26

    def test_one_dimension(self):
        assert neighbour_exchange_events(1) == 2

    def test_invalid(self):
        with pytest.raises(MachineError):
            neighbour_exchange_events(0)


class TestCompareMappings:
    def test_uniform_cells_are_balanced(self):
        pops = np.full((10, 10), 7)
        cmp = compare_mappings(pops)
        assert cmp.cell_mapping_compute_utilization == pytest.approx(1.0)
        assert cmp.compute_advantage == pytest.approx(1.0)

    def test_shock_like_imbalance(self):
        # Post-shock cells 3.7x denser: utilization drops accordingly.
        pops = np.full(100, 10)
        pops[:25] = 37
        cmp = compare_mappings(pops)
        expected_mean = (25 * 37 + 75 * 10) / 100
        assert cmp.cell_mapping_compute_utilization == pytest.approx(
            expected_mean / 37
        )
        assert cmp.compute_advantage > 2.0

    def test_particle_mapping_always_unit(self):
        pops = np.array([1, 100])
        assert compare_mappings(pops).particle_mapping_compute_utilization == 1.0

    def test_active_fraction_is_one_eighth_2d(self):
        cmp = compare_mappings(np.array([5, 5]), dimensions=2)
        assert cmp.cell_mapping_comm_active_fraction == pytest.approx(1 / 8)

    def test_migration_fraction(self):
        moved = np.array([True, False, False, True])
        cmp = compare_mappings(np.array([2, 2]), migrated=moved)
        assert cmp.migration_fraction == pytest.approx(0.5)

    def test_empty_snapshot_rejected(self):
        with pytest.raises(MachineError):
            compare_mappings(np.zeros(4, dtype=int))
        with pytest.raises(MachineError):
            compare_mappings(np.array([], dtype=int))

    def test_negative_population_rejected(self):
        with pytest.raises(MachineError):
            compare_mappings(np.array([3, -1]))
