#!/usr/bin/env python
"""Knudsen-number sweep: watch the shock thicken and the wake wash out.

The physical story of figures 1 vs 4 and 2 vs 5: as the freestream mean
free path grows, the oblique shock over the wedge broadens (thickness
scales with the mean free path) and the wake shock behind the base is
progressively washed out.  This example sweeps the mean free path and
tabulates both effects.

Run:
    python examples/rarefied_vs_continuum.py
"""

import time

from repro import Domain, Freestream, Simulation, SimulationConfig, Wedge
from repro.analysis.shock import (
    fit_shock_angle,
    post_shock_plateau,
    shock_thickness,
    wake_floor_ridge,
)

DOMAIN = Domain(72, 48)
WEDGE = Wedge(x_leading=14.0, base=18.0, angle_deg=30.0)

#: Freestream mean free paths in cell widths (0 = the continuum limit;
#: values below ~0.45 would violate the selection rule's validity bound
#: at this velocity scale and are rejected by the configuration).
MEAN_FREE_PATHS = (0.0, 0.5, 1.0)


def run_case(lambda_mfp: float) -> Simulation:
    cfg = SimulationConfig(
        domain=DOMAIN,
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=lambda_mfp, density=12.0
        ),
        wedge=WEDGE,
        seed=42,
    )
    sim = Simulation(cfg)
    sim.run(280)
    sim.run(280, sample=True)
    return sim


def main() -> None:
    print(f"{'lambda':>8s} {'Kn':>8s} {'beta(deg)':>10s} "
          f"{'rho2/rho1':>10s} {'thick':>7s} {'wake':>7s}")
    for lam in MEAN_FREE_PATHS:
        t0 = time.time()
        sim = run_case(lam)
        rho = sim.density_ratio_field()
        fit = fit_shock_angle(rho, WEDGE)
        plateau = post_shock_plateau(rho, WEDGE, fit)
        thick = shock_thickness(rho, WEDGE, fit, plateau=plateau)
        wake = wake_floor_ridge(rho, WEDGE, DOMAIN)
        kn = sim.config.freestream.knudsen(WEDGE.base) if lam else 0.0
        print(
            f"{lam:8.2f} {kn:8.3f} {fit.angle_deg:10.2f} "
            f"{plateau:10.2f} {thick:7.2f} {wake:7.2f}"
            f"    ({time.time() - t0:.0f} s)"
        )
    print(
        "\nExpected trends (the paper's figs 1 vs 4 and 2 vs 5):\n"
        "  * shock angle and density ratio stay at the inviscid values\n"
        "  * shock thickness grows with the mean free path\n"
        "  * the wake floor ridge (floor/mid-height density in the far\n"
        "    wake) falls as the recompression layer washes out -- the\n"
        "    contrast is marginal at this quick-demo scale; the FIG2/FIG5\n"
        "    benches run it converged (40 particles/cell, full grid)"
    )


if __name__ == "__main__":
    main()
