"""Property-based tests of the fixed-point arithmetic invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fixedpoint import Q8_23, quick_dirty_bits

words = arrays(
    np.int32,
    st.integers(min_value=1, max_value=64),
    elements=st.integers(min_value=-(2**30), max_value=2**30 - 1),
)

representable = arrays(
    np.float64,
    st.integers(min_value=1, max_value=64),
    elements=st.floats(
        min_value=-250.0, max_value=250.0, allow_nan=False, allow_infinity=False
    ),
)


class TestRoundtrip:
    @given(representable)
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_within_half_lsb(self, vals):
        out = Q8_23.decode(Q8_23.encode(vals))
        assert np.all(np.abs(out - vals) <= Q8_23.resolution / 2 + 1e-15)

    @given(words)
    @settings(max_examples=80, deadline=None)
    def test_decode_encode_exact_on_words(self, w):
        assert np.array_equal(Q8_23.encode(Q8_23.decode(w)), w)


class TestHalveProperties:
    @given(words)
    @settings(max_examples=80, deadline=None)
    def test_truncate_never_grows_magnitude(self, w):
        out = Q8_23.halve(w, mode="truncate")
        assert np.all(np.abs(out.astype(np.int64)) <= np.abs(w.astype(np.int64)) // 2 + 0)

    @given(words)
    @settings(max_examples=80, deadline=None)
    def test_truncate_error_below_one_lsb(self, w):
        out = Q8_23.halve(w, mode="truncate").astype(np.float64)
        assert np.all(np.abs(out - w / 2.0) < 1.0)

    @given(words, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_stochastic_error_below_one_lsb(self, w, seed):
        bits = np.random.default_rng(seed).integers(0, 2, size=w.shape)
        out = Q8_23.halve(w, mode="stochastic", rand_bits=bits).astype(np.float64)
        assert np.all(np.abs(out - w / 2.0) <= 0.5)

    @given(words)
    @settings(max_examples=80, deadline=None)
    def test_even_words_halve_exactly_all_modes(self, w):
        even = (w // 2) * 2
        for mode in ("truncate", "floor"):
            assert np.array_equal(
                Q8_23.halve(even, mode=mode), even // 2
            )
        bits = np.zeros(even.shape, dtype=np.int32)
        assert np.array_equal(
            Q8_23.halve(even, mode="stochastic", rand_bits=bits), even // 2
        )

    @given(words)
    @settings(max_examples=50, deadline=None)
    def test_add_sub_roundtrip(self, w):
        half = Q8_23.halve(w, mode="floor")
        assert np.array_equal(Q8_23.sub(Q8_23.add(half, half), half), half)


class TestQuickDirty:
    @given(words, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_bits_in_range(self, w, nbits):
        out = quick_dirty_bits(w, nbits)
        assert np.all(out >= 0)
        assert np.all(out < (1 << nbits))
