"""Shared harness for comparing collision schemes.

The comparison workload is a spatially uniform **heat bath**: a periodic
box partitioned into cells, no bulk flow, particles initialized far from
equilibrium (e.g. a bimodal or rectangular velocity distribution).  Any
correct scheme must (a) conserve what it claims to conserve and (b)
relax the distribution to a Maxwellian at the bath temperature.  The
harness advances motionless collision rounds (the collision operator in
isolation) and records conservation drift and distribution diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.distributions import excess_kurtosis, sample_rectangular
from repro.physics.freestream import Freestream
from repro.rng import make_rng, random_permutation_table


class CollisionScheme(Protocol):
    """One motionless collision round over a cell-partitioned population."""

    name: str

    def collide_step(
        self, particles: ParticleArrays, n_cells: int, rng: np.random.Generator
    ) -> int:
        """Perform one step of collisions; returns collisions done."""
        ...


@dataclass
class SchemeResult:
    """Outcome of a heat-bath relaxation run."""

    name: str
    steps: int
    total_collisions: int
    energy_drift: float        # |E_end - E_0| / E_0
    momentum_drift: float      # |p_end - p_0| / (N c_mp)
    final_kurtosis: float      # mean excess kurtosis over u,v,w (0 = Gaussian)
    seconds: float


class HeatBath:
    """Uniform relaxation workload shared by all schemes.

    Parameters
    ----------
    n_particles:
        Population size.
    n_cells:
        Number of (conceptual) cells the population is scattered over.
    freestream:
        Supplies the thermal scale and collision probability anchor.
        The bath has zero drift regardless of the freestream's Mach
        number.
    """

    def __init__(
        self,
        n_particles: int = 20000,
        n_cells: int = 64,
        freestream: Freestream = None,
        rotational_dof: int = 2,
    ) -> None:
        if n_particles < 2 or n_cells < 1:
            raise ConfigurationError("need >= 2 particles and >= 1 cell")
        self.n_particles = n_particles
        self.n_cells = n_cells
        self.freestream = freestream or Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=2.0,
            density=n_particles / n_cells,
        )
        self.rotational_dof = rotational_dof

    def initial_population(self, rng: np.random.Generator) -> ParticleArrays:
        """Rectangular (far-from-Gaussian) velocities, zero drift."""
        n = self.n_particles
        rdof = self.rotational_dof
        vel = sample_rectangular(rng, n, self.freestream.c_mp)
        rot = sample_rectangular(rng, n, self.freestream.c_mp, components=rdof)
        return ParticleArrays(
            x=np.zeros(n),
            y=np.zeros(n),
            u=vel[:, 0].copy(),
            v=vel[:, 1].copy(),
            w=vel[:, 2].copy(),
            rot=rot,
            perm=random_permutation_table(rng, n, length=3 + rdof),
            cell=rng.integers(0, self.n_cells, size=n).astype(np.int64),
        )

    def run(
        self,
        scheme: CollisionScheme,
        steps: int = 40,
        seed: int = 0,
        reshuffle_cells: bool = True,
    ) -> SchemeResult:
        """Relax the bath under ``scheme`` and report the diagnostics."""
        import time

        rng = make_rng(seed)
        parts = self.initial_population(rng)
        e0 = parts.total_energy()
        p0 = parts.momentum()
        t0 = time.perf_counter()
        total = 0
        for _ in range(steps):
            if reshuffle_cells:
                parts.cell = rng.integers(
                    0, self.n_cells, size=parts.n
                ).astype(np.int64)
            total += scheme.collide_step(parts, self.n_cells, rng)
        dt = time.perf_counter() - t0
        e1 = parts.total_energy()
        p1 = parts.momentum()
        kurt = float(
            np.mean(
                excess_kurtosis(np.column_stack((parts.u, parts.v, parts.w)))
            )
        )
        scale = parts.n * self.freestream.c_mp
        return SchemeResult(
            name=scheme.name,
            steps=steps,
            total_collisions=total,
            energy_drift=abs(e1 - e0) / e0 if e0 else 0.0,
            momentum_drift=float(np.linalg.norm(p1 - p0)) / scale,
            final_kurtosis=kurt,
            seconds=dt,
        )


def sort_population_by_cell(
    particles: ParticleArrays, rng: np.random.Generator
) -> None:
    """Randomized cell sort used by pair-based schemes on the bath."""
    keys = particles.cell * 8 + rng.integers(0, 8, size=particles.n)
    particles.reorder_inplace(np.argsort(keys, kind="stable"))
