"""The collision algorithm (sub-step 4; eqs. (9)-(18) of the paper).

The outcome of a collision of two perfect diatomic molecules is "for
each particle, a new velocity and internal energy subject to the
constraints of conservation of linear momentum and energy".  Rotational
energy is carried by a rotational velocity vector r with
``E_rot = 1/2 m r.r`` (eq. (9)); a diatomic r has two components.

**The five values.**  "One begins by computing the relative and mean
pre-collision velocity components for each collision partner"
(eqs. (12)-(15)).  With m1 = m2 = m define, per component,

    mean:           W  = (c1 + c2) / 2       (3 translational)
                    S  = (r1 + r2) / 2       (2 rotational)
    half-relative:  h  = (c1 - c2) / 2       (3 translational)
                    hq = (r1 - r2) / 2       (2 rotational)

Momentum conservation fixes W' = W (eq. (14)-(15)); the paper's
assumption (eqs. (16)-(17)) additionally carries the rotational mean S
through the collision unchanged.  Substituting into energy conservation
(eqs. (10)-(11)) collapses both constraints into the single equation
(18):

    |h'|^2 + |hq'|^2 = |h|^2 + |hq|^2

i.e. the *norm of the five-element half-relative vector is conserved*,
and "any post-collision values that satisfy (18) are valid".  The
implementation uses exactly the paper's choice: re-order the five
pre-collision values by the particle's permutation vector and give every
element a random, equally probable sign; then "for the first particle
the new relative velocity is added to the mean velocity and for the
second particle the relative velocity is subtracted from the mean
velocity":

    c1' = W + h'[0:3]    c2' = W - h'[0:3]
    r1' = S + h'[3:5]    r2' = S - h'[3:5]

Momentum and energy are conserved *exactly* (to rounding), and repeated
collisions equidistribute energy over all five degrees of freedom --
the stationary state satisfies classical equipartition (<c_x'^2> =
<r_j^2>), which the property tests verify.

This module is the float64 reference; the CM engine re-implements the
same arithmetic in Q8.23 fixed point where the divisions by two above
are exactly the truncation hazard the paper's stochastic rounding fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.particles import ParticleArrays
from repro.core.permutation import apply_permutation
from repro.errors import ConfigurationError
from repro.rng import random_signs


@dataclass(frozen=True)
class CollisionStats:
    """Bookkeeping from one collision sub-step."""

    n_collisions: int
    energy_exchanged: float  # |translational energy change| summed over pairs


def collide_pairs(
    particles: ParticleArrays,
    first: np.ndarray,
    second: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    signs: Optional[np.ndarray] = None,
    transpositions: Optional[np.ndarray] = None,
    internal_exchange_probability: float = 1.0,
) -> CollisionStats:
    """Collide the given (first[i], second[i]) pairs, in place.

    Parameters
    ----------
    particles:
        The population (velocities, rotational state and permutation
        vectors are updated in place).
    first, second:
        Sorted addresses of the colliding pairs (the accepted candidate
        pairs from the selection rule).
    rng:
        Source for the random signs and the permutation-refresh
        transpositions when they are not supplied explicitly.
    signs:
        Optional ``(n_pairs, k)`` array of +-1 (the CM engine feeds
        quick-and-dirty bits here).
    transpositions:
        Optional ``(2 * n_pairs,)`` swap indices for refreshing first
        then second partners' permutation vectors.
    internal_exchange_probability:
        The Future-Work relaxation knob (see
        :class:`repro.physics.molecules.MolecularModel`): with this
        probability a pair's internal components join the five-element
        shuffle; otherwise only the three translational half-relative
        components are re-ordered among themselves (drawn from ``rng``;
        energy and momentum are conserved either way).  1.0 (default)
        is the paper's fully mixing model.

    Returns per-step collision statistics.
    """
    a = np.asarray(first)
    b = np.asarray(second)
    if a.shape != b.shape:
        raise ConfigurationError("first/second shapes differ")
    n = a.shape[0]
    k = 3 + particles.rotational_dof
    if n == 0:
        return CollisionStats(n_collisions=0, energy_exchanged=0.0)

    # Means (conserved) and half-relatives (eqs. (12)-(15)).
    wu = 0.5 * (particles.u[a] + particles.u[b])
    wv = 0.5 * (particles.v[a] + particles.v[b])
    ww = 0.5 * (particles.w[a] + particles.w[b])
    smean = 0.5 * (particles.rot[a] + particles.rot[b])

    h = np.empty((n, k))
    h[:, 0] = 0.5 * (particles.u[a] - particles.u[b])
    h[:, 1] = 0.5 * (particles.v[a] - particles.v[b])
    h[:, 2] = 0.5 * (particles.w[a] - particles.w[b])
    h[:, 3:] = 0.5 * (particles.rot[a] - particles.rot[b])

    # Re-order by the first partner's permutation vector ("which one
    # gets used is inconsequential") and apply random signs.
    h_new = _mixed_half_relatives(
        h, particles.perm[a], rng, signs, internal_exchange_probability, k
    )

    e_trans_before = h[:, 0] ** 2 + h[:, 1] ** 2 + h[:, 2] ** 2

    # Reconstruct post-collision states (momentum: mean +- relative).
    particles.u[a] = wu + h_new[:, 0]
    particles.u[b] = wu - h_new[:, 0]
    particles.v[a] = wv + h_new[:, 1]
    particles.v[b] = wv - h_new[:, 1]
    particles.w[a] = ww + h_new[:, 2]
    particles.w[b] = ww - h_new[:, 2]
    particles.rot[a] = smean + h_new[:, 3:]
    particles.rot[b] = smean - h_new[:, 3:]

    e_trans_after = h_new[:, 0] ** 2 + h_new[:, 1] ** 2 + h_new[:, 2] ** 2

    # Refresh both partners' permutation vectors with one random
    # transposition each (the Aldous-Diaconis shuffle step).
    if transpositions is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit transpositions")
        transpositions = rng.integers(0, k, size=2 * n)
    else:
        transpositions = np.asarray(transpositions)
        if transpositions.shape != (2 * n,):
            raise ConfigurationError("need 2 * n_pairs transposition draws")
    _transpose_rows(particles.perm, a, transpositions[:n])
    _transpose_rows(particles.perm, b, transpositions[n:])

    return CollisionStats(
        n_collisions=n,
        energy_exchanged=float(np.abs(e_trans_after - e_trans_before).sum()),
    )


def _mixed_half_relatives(
    h: np.ndarray,
    perm_rows: np.ndarray,
    rng: Optional[np.random.Generator],
    signs: Optional[np.ndarray],
    internal_exchange_probability: float,
    k: int,
) -> np.ndarray:
    """The eq. (18) shuffle: permute half-relatives, apply random signs.

    Shared by the gather/scatter and adjacent-pair collision kernels so
    the physics cannot diverge between them.
    """
    n = h.shape[0]
    h_new = apply_permutation(h, perm_rows)
    if signs is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit signs")
        signs = random_signs(rng, (n, k))
    else:
        signs = np.asarray(signs)
        if signs.shape != (n, k):
            raise ConfigurationError(f"signs must have shape {(n, k)}")
    np.multiply(h_new, signs, out=h_new, casting="unsafe")

    if internal_exchange_probability < 1.0:
        if rng is None:
            raise ConfigurationError(
                "internal_exchange_probability < 1 requires rng"
            )
        frozen = rng.random(n) >= internal_exchange_probability
        if np.any(frozen):
            nf = int(np.count_nonzero(frozen))
            # Translational-only outcome: permute the 3 translational
            # half-relatives among themselves (uniform 3-permutation),
            # apply fresh signs, keep internal components untouched.
            trans_perm = np.argsort(rng.random((nf, 3)), axis=1)
            rows = np.arange(nf)[:, None]
            h_trans = h[frozen][:, :3][rows, trans_perm]
            h_trans *= random_signs(rng, (nf, 3))
            h_new[frozen, :3] = h_trans
            h_new[frozen, 3:] = h[frozen, 3:]
    return h_new


def _mixed_half_relatives_t(
    ht: np.ndarray,
    perm_rows: np.ndarray,
    rng: Optional[np.random.Generator],
    signs: Optional[np.ndarray],
    internal_exchange_probability: float,
    k: int,
) -> np.ndarray:
    """Transposed-layout eq. (18) shuffle: ``ht`` is ``(k, n_pairs)``.

    Elementwise identical to :func:`_mixed_half_relatives` on the
    transpose (``out[j, i] == _mixed_half_relatives(h, ...)[i, j]``)
    with the *same RNG consumption order* -- the signs are still drawn
    as an ``(n, k)`` block, the frozen-pair draws are unchanged -- so
    swapping a kernel to the transposed layout is bitwise invisible.
    The component-major layout makes every downstream per-component
    read (``ht[j]``) a contiguous row instead of a strided column,
    which is where the memory-bound collision phase spends its time.
    """
    n = ht.shape[1]
    # Flattened gather out[j, i] = ht[perm[i, j], i]: flat position
    # perm[i, j] * n + i, one 1-D take over the (k, n) block.
    idx = perm_rows.T.astype(np.intp)
    idx *= n
    idx += np.arange(n, dtype=np.intp)
    htn = np.take(ht.reshape(-1), idx)
    if signs is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit signs")
        signs = random_signs(rng, (n, k))
    else:
        signs = np.asarray(signs)
        if signs.shape != (n, k):
            raise ConfigurationError(f"signs must have shape {(n, k)}")
    np.multiply(htn, signs.T, out=htn, casting="unsafe")

    if internal_exchange_probability < 1.0:
        if rng is None:
            raise ConfigurationError(
                "internal_exchange_probability < 1 requires rng"
            )
        frozen = rng.random(n) >= internal_exchange_probability
        if np.any(frozen):
            nf = int(np.count_nonzero(frozen))
            trans_perm = np.argsort(rng.random((nf, 3)), axis=1)
            rows = np.arange(nf)[:, None]
            h_trans = ht[:3, frozen].T[rows, trans_perm]
            h_trans *= random_signs(rng, (nf, 3))
            htn[:3, frozen] = h_trans.T
            htn[3:, frozen] = ht[3:, frozen]
    return htn


def collide_adjacent_pairs(
    particles: ParticleArrays,
    pair_index: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    signs: Optional[np.ndarray] = None,
    transpositions: Optional[np.ndarray] = None,
    internal_exchange_probability: float = 1.0,
) -> CollisionStats:
    """Collide pairs of *adjacent* rows ``(2i, 2i+1)``, in place.

    After the cell sort, even/odd pairing makes every collision pair a
    pair of adjacent addresses, so the pair's state lives in one
    contiguous two-row block.  Viewing each column as ``(n_pairs, 2)``
    turns the generic kernel's two scattered gathers per column into a
    single contiguous-row gather (and the write-back into one scatter),
    roughly halving the collision phase's memory traffic.

    ``pair_index`` holds the indices ``i`` of the accepted pairs;
    ``None`` means *all* ``n // 2`` formed pairs collide (the reservoir
    mix after an in-place re-pairing shuffle), which needs no gathers
    at all -- the kernel runs on strided views.

    Physics identical to :func:`collide_pairs` (shared mixing helper);
    the equivalence is pinned by a unit test.
    """
    n_all = particles.n // 2
    rdof = particles.rotational_dof
    k = 3 + rdof
    if pair_index is None:
        m = n_all
    else:
        pair_index = np.asarray(pair_index)
        m = pair_index.shape[0]
    if m == 0:
        return CollisionStats(n_collisions=0, energy_exchanged=0.0)

    u, v, w, rot = particles.u, particles.v, particles.w, particles.rot
    rot_flat = rot.reshape(-1) if rot.flags.c_contiguous else None
    if pair_index is None:
        # All pairs: the partner state is readable through strided
        # views -- no gathers at all (the reservoir-mix configuration,
        # where a physical shuffle already made every pair adjacent).
        a = np.arange(0, 2 * n_all, 2, dtype=np.intp)
        b = a + 1  # only the permutation refresh indexes through b
        u0, u1 = u[0 : 2 * n_all : 2], u[1 : 2 * n_all : 2]
        v0, v1 = v[0 : 2 * n_all : 2], v[1 : 2 * n_all : 2]
        w0, w1 = w[0 : 2 * n_all : 2], w[1 : 2 * n_all : 2]
        r0, r1 = rot[0 : 2 * n_all : 2], rot[1 : 2 * n_all : 2]
        r0c = [r0[:, j] for j in range(rdof)]
        r1c = [r1[:, j] for j in range(rdof)]
    else:
        # Accepted subset: 1-D takes per partner are the fastest gather
        # NumPy offers (fancy row indexing is ~5x slower).
        a = pair_index * 2
        b = a + 1
        u0, u1 = np.take(u, a), np.take(u, b)
        v0, v1 = np.take(v, a), np.take(v, b)
        w0, w1 = np.take(w, a), np.take(w, b)
        r0, r1 = np.take(rot, a, axis=0), np.take(rot, b, axis=0)
        r0c = [r0[:, j] for j in range(rdof)]
        r1c = [r1[:, j] for j in range(rdof)]
        if rot_flat is not None:
            ar = a * rdof
            br = b * rdof

    # Means (conserved) and half-relatives (eqs. (12)-(15)), built
    # component-major: every per-component slice below is a contiguous
    # row, not a strided column.
    wu = 0.5 * (u0 + u1)
    wv = 0.5 * (v0 + v1)
    ww = 0.5 * (w0 + w1)
    smean = np.empty((rdof, m))
    ht = np.empty((k, m))
    np.subtract(u0, u1, out=ht[0])
    np.subtract(v0, v1, out=ht[1])
    np.subtract(w0, w1, out=ht[2])
    for j in range(rdof):
        np.add(r0c[j], r1c[j], out=smean[j])
        np.subtract(r0c[j], r1c[j], out=ht[3 + j])
    ht *= 0.5
    smean *= 0.5

    htn = _mixed_half_relatives_t(
        ht, np.take(particles.perm, a, axis=0), rng, signs,
        internal_exchange_probability, k,
    )

    e_trans_before = ht[0] ** 2 + ht[1] ** 2 + ht[2] ** 2

    # Reconstruct post-collision states (momentum: mean +- relative);
    # 1-D fancy scatters per partner (or the strided views directly).
    if pair_index is None:
        u0[:] = wu + htn[0]
        u1[:] = wu - htn[0]
        v0[:] = wv + htn[1]
        v1[:] = wv - htn[1]
        w0[:] = ww + htn[2]
        w1[:] = ww - htn[2]
        for j in range(rdof):
            r0c[j][:] = smean[j] + htn[3 + j]
            r1c[j][:] = smean[j] - htn[3 + j]
    else:
        u[a] = wu + htn[0]
        u[b] = wu - htn[0]
        v[a] = wv + htn[1]
        v[b] = wv - htn[1]
        w[a] = ww + htn[2]
        w[b] = ww - htn[2]
        if rot_flat is not None:
            # Flat 1-D scatters replace the 2-D fancy row scatter
            # (the old kernel's single most expensive op).
            for j in range(rdof):
                rot_flat[ar + j] = smean[j] + htn[3 + j]
                rot_flat[br + j] = smean[j] - htn[3 + j]
        else:
            for j in range(rdof):
                rot[a, j] = smean[j] + htn[3 + j]
                rot[b, j] = smean[j] - htn[3 + j]

    e_trans_after = htn[0] ** 2 + htn[1] ** 2 + htn[2] ** 2

    if transpositions is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit transpositions")
        transpositions = rng.integers(0, k, size=2 * m)
    else:
        transpositions = np.asarray(transpositions)
        if transpositions.shape != (2 * m,):
            raise ConfigurationError("need 2 * n_pairs transposition draws")
    _transpose_rows(particles.perm, a, transpositions[:m])
    _transpose_rows(particles.perm, b, transpositions[m:])

    return CollisionStats(
        n_collisions=m,
        energy_exchanged=float(np.abs(e_trans_after - e_trans_before).sum()),
    )


def collide_rows_with_velocities(
    particles: ParticleArrays,
    a_rows: np.ndarray,
    b_rows: np.ndarray,
    u0: np.ndarray,
    u1: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    w0: np.ndarray,
    w1: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    signs: Optional[np.ndarray] = None,
    transpositions: Optional[np.ndarray] = None,
    internal_exchange_probability: float = 1.0,
) -> CollisionStats:
    """Collide arbitrary row pairs whose velocities are already gathered.

    The fused selection/collision kernel's entry point: the selection
    pass has *already* gathered each pair's translational velocity
    components (it needed them for the relative speed), so re-gathering
    them here -- as :func:`collide_pairs` would -- wastes six scattered
    reads per pair.  This variant accepts the pre-gathered ``u0/u1``,
    ``v0/v1``, ``w0/w1`` arrays (one entry per accepted pair, aligned
    with ``a_rows``/``b_rows``) and only gathers what selection never
    touched: rotational state and permutation vectors.

    Physics is byte-for-byte :func:`collide_pairs`: the same
    :func:`_mixed_half_relatives` shuffle, the same mean +- relative
    reconstruction, the same transposition refresh, and the same RNG
    consumption order (signs, then the optional internal-exchange
    draws, then transpositions) -- pinned by a unit equivalence test.
    The input velocity arrays are not modified.
    """
    a = np.asarray(a_rows)
    b = np.asarray(b_rows)
    if a.shape != b.shape:
        raise ConfigurationError("a_rows/b_rows shapes differ")
    m = a.shape[0]
    k = 3 + particles.rotational_dof
    if m == 0:
        return CollisionStats(n_collisions=0, energy_exchanged=0.0)

    rdof = particles.rotational_dof
    rot = particles.rot
    rot_flat = rot.reshape(-1) if rot.flags.c_contiguous else None
    # Row gather touches each pair's cache line once (vs twice for
    # per-component flat takes); the write-back below still uses flat
    # 1-D scatters, which measure faster than the 2-D row scatter.
    r0, r1 = np.take(rot, a, axis=0), np.take(rot, b, axis=0)
    r0c = [r0[:, j] for j in range(rdof)]
    r1c = [r1[:, j] for j in range(rdof)]
    if rot_flat is not None:
        ar = a * rdof
        br = b * rdof

    # Means (conserved) and half-relatives (eqs. (12)-(15)), built
    # component-major (see :func:`_mixed_half_relatives_t`).
    wu = 0.5 * (u0 + u1)
    wv = 0.5 * (v0 + v1)
    ww = 0.5 * (w0 + w1)
    smean = np.empty((rdof, m))
    ht = np.empty((k, m))
    np.subtract(u0, u1, out=ht[0])
    np.subtract(v0, v1, out=ht[1])
    np.subtract(w0, w1, out=ht[2])
    for j in range(rdof):
        np.add(r0c[j], r1c[j], out=smean[j])
        np.subtract(r0c[j], r1c[j], out=ht[3 + j])
    ht *= 0.5
    smean *= 0.5

    htn = _mixed_half_relatives_t(
        ht, np.take(particles.perm, a, axis=0), rng, signs,
        internal_exchange_probability, k,
    )

    e_trans_before = ht[0] ** 2 + ht[1] ** 2 + ht[2] ** 2

    u, v, w = particles.u, particles.v, particles.w
    u[a] = wu + htn[0]
    u[b] = wu - htn[0]
    v[a] = wv + htn[1]
    v[b] = wv - htn[1]
    w[a] = ww + htn[2]
    w[b] = ww - htn[2]
    if rot_flat is not None:
        for j in range(rdof):
            rot_flat[ar + j] = smean[j] + htn[3 + j]
            rot_flat[br + j] = smean[j] - htn[3 + j]
    else:
        for j in range(rdof):
            rot[a, j] = smean[j] + htn[3 + j]
            rot[b, j] = smean[j] - htn[3 + j]

    e_trans_after = htn[0] ** 2 + htn[1] ** 2 + htn[2] ** 2

    if transpositions is None:
        if rng is None:
            raise ConfigurationError("need rng or explicit transpositions")
        transpositions = rng.integers(0, k, size=2 * m)
    else:
        transpositions = np.asarray(transpositions)
        if transpositions.shape != (2 * m,):
            raise ConfigurationError("need 2 * n_pairs transposition draws")
    _transpose_rows(particles.perm, a, transpositions[:m])
    _transpose_rows(particles.perm, b, transpositions[m:])

    return CollisionStats(
        n_collisions=m,
        energy_exchanged=float(np.abs(e_trans_after - e_trans_before).sum()),
    )


def _transpose_rows(perm: np.ndarray, rows: np.ndarray, js: np.ndarray) -> None:
    """Swap element js[i] with element 0 in perm[rows[i]], vectorized.

    ``rows`` may repeat only if the repeats carry identical swaps; the
    collision pairing guarantees disjoint rows within each call.
    """
    if perm.flags.c_contiguous:
        # 1-D flattened swap: fancy indexing with a single index array
        # beats the (rows, js) double-index path on every op here.
        flat = perm.reshape(-1)
        i0 = rows * perm.shape[1]
        ij = i0 + js
        tmp = flat[ij]  # fancy gather already copies
        flat[ij] = flat[i0]
        flat[i0] = tmp
        return
    tmp = perm[rows, js].copy()
    perm[rows, js] = perm[rows, 0]
    perm[rows, 0] = tmp
