"""Unit tests for the collision algorithm (eqs. (9)-(18))."""

import numpy as np
import pytest

from repro.core.collision import CollisionStats, collide_pairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.freestream import Freestream


@pytest.fixture
def pop(rng):
    fs = Freestream(mach=4.0, c_mp=0.2, lambda_mfp=0.5, density=8.0)
    return ParticleArrays.from_freestream(rng, 400, fs, (0, 10), (0, 10))


def random_pairs(rng, n, n_pairs):
    order = rng.permutation(n)
    return order[: 2 * n_pairs : 2], order[1 : 2 * n_pairs : 2]


class TestConservation:
    def test_energy_conserved_exactly(self, pop, rng):
        e0 = pop.total_energy()
        a, b = random_pairs(rng, pop.n, 150)
        collide_pairs(pop, a, b, rng=rng)
        assert pop.total_energy() == pytest.approx(e0, rel=1e-12)

    def test_momentum_conserved_exactly(self, pop, rng):
        p0 = pop.momentum()
        a, b = random_pairs(rng, pop.n, 150)
        collide_pairs(pop, a, b, rng=rng)
        assert np.allclose(pop.momentum(), p0, atol=1e-9)

    def test_pairwise_energy_conserved(self, pop, rng):
        # Conservation must hold per pair, not just globally.
        a, b = random_pairs(rng, pop.n, 50)
        def pair_energy():
            return (
                0.5 * (pop.u[a]**2 + pop.v[a]**2 + pop.w[a]**2
                       + pop.u[b]**2 + pop.v[b]**2 + pop.w[b]**2)
                + 0.5 * ((pop.rot[a]**2).sum(axis=1) + (pop.rot[b]**2).sum(axis=1))
            )
        e0 = pair_energy()
        collide_pairs(pop, a, b, rng=rng)
        assert np.allclose(pair_energy(), e0, rtol=1e-12)

    def test_pairwise_momentum_conserved(self, pop, rng):
        a, b = random_pairs(rng, pop.n, 50)
        pu0 = pop.u[a] + pop.u[b]
        collide_pairs(pop, a, b, rng=rng)
        assert np.allclose(pop.u[a] + pop.u[b], pu0, atol=1e-12)

    def test_untouched_particles_unchanged(self, pop, rng):
        a, b = random_pairs(rng, pop.n, 20)
        touched = np.zeros(pop.n, dtype=bool)
        touched[a] = touched[b] = True
        u0 = pop.u.copy()
        collide_pairs(pop, a, b, rng=rng)
        assert np.array_equal(pop.u[~touched], u0[~touched])


class TestMechanics:
    def test_deterministic_with_explicit_inputs(self, pop, rng):
        a, b = random_pairs(rng, pop.n, 10)
        signs = np.ones((10, 5), dtype=np.int8)
        trans = np.zeros(20, dtype=np.int64)
        pop2 = pop.copy()
        collide_pairs(pop, a, b, signs=signs, transpositions=trans)
        collide_pairs(pop2, a, b, signs=signs, transpositions=trans)
        assert np.array_equal(pop.u, pop2.u)
        assert np.array_equal(pop.rot, pop2.rot)

    def test_identity_permutation_plus_signs_is_identity(self, rng, pop):
        # With identity permutation vectors and all-plus signs the
        # collision reconstructs the original velocities exactly.
        a, b = random_pairs(rng, pop.n, 30)
        pop.perm[:] = np.arange(5, dtype=np.int8)
        u0, r0 = pop.u.copy(), pop.rot.copy()
        collide_pairs(
            pop, a, b,
            signs=np.ones((30, 5), dtype=np.int8),
            transpositions=np.zeros(60, dtype=np.int64),
        )
        assert np.allclose(pop.u, u0)
        assert np.allclose(pop.rot, r0)

    def test_sign_flip_reverses_relative_velocity(self, rng, pop):
        a = np.array([0]); b = np.array([1])
        pop.perm[0] = np.arange(5, dtype=np.int8)
        u1, u2 = pop.u[0], pop.u[1]
        collide_pairs(
            pop, a, b,
            signs=-np.ones((1, 5), dtype=np.int8),
            transpositions=np.zeros(2, dtype=np.int64),
        )
        # Swapped: each particle now carries the other's velocity.
        assert pop.u[0] == pytest.approx(u2)
        assert pop.u[1] == pytest.approx(u1)

    def test_translational_rotational_exchange(self, rng):
        # A permutation moving a rotational component into slot 0 must
        # transfer energy between modes.
        fs = Freestream(mach=1.1, c_mp=0.2, lambda_mfp=0.5, density=8.0)
        pop = ParticleArrays.from_freestream(np.random.default_rng(1), 2, fs, (0, 1), (0, 1))
        pop.u[:] = [1.0, -1.0]
        pop.v[:] = 0.0
        pop.w[:] = 0.0
        pop.rot[:] = 0.0
        e_rot0 = pop.rotational_energy()
        # Permutation sending index 3 (rot) into the u-slot.
        pop.perm[0] = np.array([3, 1, 2, 0, 4], dtype=np.int8)
        collide_pairs(
            pop, np.array([0]), np.array([1]),
            signs=np.ones((1, 5), dtype=np.int8),
            transpositions=np.zeros(2, dtype=np.int64),
        )
        assert pop.rotational_energy() > e_rot0
        assert pop.total_energy() == pytest.approx(1.0)

    def test_permutations_refreshed(self, pop, rng):
        a, b = random_pairs(rng, pop.n, 100)
        before = pop.perm.copy()
        collide_pairs(pop, a, b, rng=rng)
        touched = np.concatenate((a, b))
        # Most touched rows should differ (identity transposition has
        # probability 1/5 per row).
        changed = (pop.perm[touched] != before[touched]).any(axis=1)
        assert changed.mean() > 0.6
        pop.validate()

    def test_stats(self, pop, rng):
        a, b = random_pairs(rng, pop.n, 25)
        stats = collide_pairs(pop, a, b, rng=rng)
        assert isinstance(stats, CollisionStats)
        assert stats.n_collisions == 25
        assert stats.energy_exchanged >= 0.0

    def test_empty_pairs(self, pop, rng):
        stats = collide_pairs(
            pop, np.array([], dtype=int), np.array([], dtype=int), rng=rng
        )
        assert stats.n_collisions == 0

    def test_shape_validation(self, pop, rng):
        with pytest.raises(ConfigurationError):
            collide_pairs(pop, np.array([0, 1]), np.array([2]), rng=rng)
        with pytest.raises(ConfigurationError):
            collide_pairs(
                pop, np.array([0]), np.array([1]),
                signs=np.ones((2, 5), dtype=np.int8), rng=rng,
            )

    def test_needs_rng_or_inputs(self, pop):
        with pytest.raises(ConfigurationError):
            collide_pairs(pop, np.array([0]), np.array([1]))
