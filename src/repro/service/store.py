"""Crash-safe persistence of the job orchestrator (`service.jsonl`).

The store is an event-sourced job table: every mutation -- submission,
state transition, cache registration -- is one appended record in the
service journal (a :class:`~repro.telemetry.events.EventStream`
subclass, like the resilience ``RunJournal``), and the in-memory table
is always exactly the replay of the journal.  An orchestrator killed
between any two records restarts by replaying what survived:

* a **torn final line** (the crash hit mid-``write``) is dropped and
  flagged -- the journal loses at most the one record that was being
  written, never earlier history;
* garbage anywhere *before* the tail is real corruption and raises
  :class:`~repro.errors.ServiceJournalError` instead of silently
  skipping records;
* records stamped by a **newer schema version** raise
  :class:`~repro.errors.JournalVersionError` -- guessing at unknown
  record shapes could mis-reconstruct the table;
* replay is **idempotent and pure**: replaying the same records twice
  yields equal job tables (tested).

The job **state machine** is enforced here, not in the orchestrator:
``QUEUED -> RUNNING -> [RETRYING ->] DONE | FAILED | TIMED_OUT |
CANCELLED``, with every transition out of a terminal state raising
:class:`~repro.errors.JobStateError`.  That is what turns "every job
reaches exactly one terminal state" from a hope into an invariant.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import (
    JobNotFoundError,
    JobStateError,
    JournalVersionError,
    ServiceJournalError,
)
from repro.telemetry.events import EventStream

PathLike = Union[str, pathlib.Path]

#: Journal schema version stamped on every record (``"v"``).
JOURNAL_VERSION = 1

# -- the state machine ----------------------------------------------------

QUEUED = "QUEUED"
RUNNING = "RUNNING"
RETRYING = "RETRYING"
DONE = "DONE"
FAILED = "FAILED"
TIMED_OUT = "TIMED_OUT"
CANCELLED = "CANCELLED"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, TIMED_OUT, CANCELLED})

#: Allowed transitions.  ``RUNNING -> QUEUED`` is the drain/crash
#: requeue (the job goes back to the queue and resumes from its newest
#: checkpoint); ``RETRYING`` is the announced intermediate of a
#: job-level retry.  Terminal states map to the empty set.
VALID_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset(
        {DONE, FAILED, TIMED_OUT, CANCELLED, RETRYING, QUEUED}
    ),
    RETRYING: frozenset({QUEUED, CANCELLED, FAILED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    TIMED_OUT: frozenset(),
    CANCELLED: frozenset(),
}


class ServiceJournal(EventStream):
    """The orchestrator's append-only journal (``service.jsonl``)."""

    filename = "service.jsonl"


@dataclass
class JobRecord:
    """One submitted job, as reconstructed from the journal."""

    job_id: str
    scenario: str
    #: The full spec dict shipped to the worker (registry-independent).
    spec: dict
    seed: int
    overrides: dict
    #: Resolved ``(transient, average)`` step counts.
    schedule: Tuple[int, int]
    cache_key: str
    job_dir: str
    state: str = QUEUED
    #: Times this job has been started (dispatch increments it).
    attempt: int = 0
    max_retries: int = 2
    #: Per-job wall-clock deadline in seconds (None = none).
    deadline: Optional[float] = None
    submitted_time: float = 0.0
    started_time: Optional[float] = None
    finished_time: Optional[float] = None
    #: Backoff gate: not dispatched before this wall-clock time.
    not_before: float = 0.0
    error: Optional[str] = None
    exit_code: Optional[int] = None
    #: Job id whose cached result this submission reused (if any).
    cached_from: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-ready dict (the journal's ``job`` payload)."""
        d = dataclasses.asdict(self)
        d["schedule"] = list(self.schedule)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        d = dict(data)
        d["schedule"] = tuple(int(v) for v in d["schedule"])
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


def load_journal_tolerant(path: PathLike) -> Tuple[List[dict], bool]:
    """Parse a service journal, tolerating (only) a torn final line.

    Returns ``(records, torn_tail)``.  A crash while appending can
    leave a partial JSON object as the last line; that record is lost
    and flagged.  An unparseable line anywhere *before* the tail means
    the file was damaged some other way and raises
    :class:`ServiceJournalError` -- silently dropping mid-history
    records would corrupt the replayed job table.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], False
    lines = path.read_text(encoding="utf-8").splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    records: List[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                return records, True
            raise ServiceJournalError(
                "service journal is corrupt before the final record",
                path=str(path),
                line=i + 1,
            ) from exc
    return records, False


def replay(records: List[dict]) -> Tuple[Dict[str, JobRecord], Dict[str, str]]:
    """Rebuild ``(jobs, cache)`` tables from journal records.

    Pure function of its input -- replaying the same records twice
    yields equal tables -- and strict about versions: any record
    stamped with a ``v`` newer than :data:`JOURNAL_VERSION` raises
    :class:`JournalVersionError`.
    """
    jobs: Dict[str, JobRecord] = {}
    cache: Dict[str, str] = {}
    for rec in records:
        version = int(rec.get("v", 1))
        if version > JOURNAL_VERSION:
            raise JournalVersionError(
                "service journal was written by a newer schema",
                found=version,
                supported=JOURNAL_VERSION,
            )
        kind = rec.get("kind")
        if kind == "submitted":
            job = JobRecord.from_dict(rec["job"])
            jobs[job.job_id] = job
        elif kind == "state":
            job = jobs.get(rec.get("job_id"))
            if job is None:
                # Only reachable if the submission record was lost to
                # a torn tail that also lost this record's predecessor
                # -- impossible for an append-only file, but replay
                # must never crash the restart path.
                continue
            job.state = rec["state"]
            for key in (
                "attempt",
                "started_time",
                "finished_time",
                "not_before",
                "error",
                "exit_code",
            ):
                if key in rec:
                    setattr(job, key, rec[key])
        elif kind == "cached":
            cache[rec["key"]] = rec["job_id"]
        # service_start/service_stop/drained and future informational
        # kinds replay as no-ops.
    return jobs, cache


class JobStore:
    """The journal-backed job table.

    Parameters
    ----------
    data_dir:
        Service data directory; holds ``service.jsonl`` and one
        subdirectory per job.
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan`; the
        ``journal_tear`` injection point lives here (the Nth appended
        record is torn mid-write, exactly what a crash does).
    """

    def __init__(self, data_dir: PathLike, fault_plan=None) -> None:
        self.data_dir = pathlib.Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fault_plan = fault_plan
        path = self.data_dir / ServiceJournal.filename
        records, self.torn_tail = load_journal_tolerant(path)
        if self.torn_tail:
            # Repair the file: drop the torn line so future appends
            # start on a clean line instead of concatenating onto the
            # partial record (which would turn a recoverable torn tail
            # into mid-file corruption on the *next* restart).
            path.write_text(
                "".join(
                    json.dumps(r, separators=(",", ":")) + "\n"
                    for r in records
                ),
                encoding="utf-8",
            )
        self.jobs, self.cache = replay(records)
        #: Records appended so far (the journal faults' clock).
        self.seq = len(records)
        self.journal = ServiceJournal(self.data_dir)

    # -- appending ------------------------------------------------------

    def record(self, kind: str, **fields) -> int:
        """Append one versioned record; returns its sequence number.

        The ``journal_tear`` injection point lives here: the Nth
        appended record is cut mid-write and the writer dies (raises),
        exactly what a crash during ``write`` leaves behind.
        """
        self.seq += 1
        self.journal.append({"kind": kind, "v": JOURNAL_VERSION, **fields})
        if self.fault_plan is not None:
            fault = self.fault_plan.take("journal_tear", self.seq)
            if fault is not None:
                self.tear_tail()
                raise ServiceJournalError(
                    "journal tail torn (injected crash)", seq=self.seq
                )
        return self.seq

    def tear_tail(self) -> None:
        """Cut the journal's final line in half (a torn write).

        The fault-injection twin of what a crash mid-``write`` leaves
        behind; :func:`load_journal_tolerant` must absorb it.
        """
        self.journal.close()
        path = self.journal.path
        blob = path.read_bytes()
        if not blob:
            return
        last_start = blob.rstrip(b"\n").rfind(b"\n") + 1
        keep = last_start + max(1, (len(blob) - last_start) // 2)
        path.write_bytes(blob[:keep])

    # -- the job table --------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """The job's record, or :class:`JobNotFoundError`."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFoundError(
                "unknown job", job_id=job_id
            ) from None

    def add_job(self, job: JobRecord) -> int:
        """Register a new submission (journals the full job payload)."""
        if job.job_id in self.jobs:
            raise JobStateError(
                "duplicate job id", job_id=job.job_id
            )
        self.jobs[job.job_id] = job
        return self.record("submitted", job=job.to_dict())

    def transition(self, job_id: str, new_state: str, **fields) -> int:
        """Apply (and journal) one state-machine transition.

        ``fields`` are job attributes updated atomically with the
        state (``attempt``, ``error``, ``started_time``, ...); they
        ride in the same journal record so replay reproduces them.
        """
        job = self.get(job_id)
        if new_state not in VALID_TRANSITIONS:
            raise JobStateError(
                "unknown job state", job_id=job_id, state=new_state
            )
        if new_state not in VALID_TRANSITIONS[job.state]:
            raise JobStateError(
                "invalid job state transition",
                job_id=job_id,
                state=job.state,
                requested=new_state,
                terminal=job.terminal,
            )
        job.state = new_state
        known = {f.name for f in dataclasses.fields(JobRecord)}
        for key, value in fields.items():
            if key in known:
                setattr(job, key, value)
        return self.record("state", job_id=job_id, state=new_state, **fields)

    def set_cached(self, key: str, job_id: str) -> int:
        """Register a completed job's result under its cache key."""
        self.cache[key] = job_id
        return self.record("cached", key=key, job_id=job_id)

    def cache_lookup(self, key: str) -> Optional[JobRecord]:
        """The DONE job holding this key's result, if its artifact
        still exists on disk (a pruned job directory is a cache miss,
        not an error)."""
        job_id = self.cache.get(key)
        if job_id is None:
            return None
        job = self.jobs.get(job_id)
        if job is None or job.state != DONE:
            return None
        if not (pathlib.Path(job.job_dir) / "result.json").exists():
            return None
        return job

    # -- summaries ------------------------------------------------------

    def by_state(self) -> Dict[str, int]:
        """Job counts per state (every state present, zeros kept)."""
        counts: Dict[str, int] = {
            s: 0 for s in VALID_TRANSITIONS
        }
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def close(self) -> None:
        """Close the journal handle (appends reopen it if needed)."""
        self.journal.close()


def summarize_journal(data_dir: PathLike) -> Optional[dict]:
    """One-pass summary of a service journal (the report CLI's view).

    Returns ``None`` when the directory has no ``service.jsonl``.
    """
    path = pathlib.Path(data_dir) / ServiceJournal.filename
    if not path.exists():
        return None
    records, torn = load_journal_tolerant(path)
    jobs, cache = replay(records)
    summary = {
        "jobs": len(jobs),
        "by_state": {},
        "submissions": 0,
        "retries": 0,
        "cache_hits": 0,
        "backpressure": 0,
        "drains": 0,
        "requeues": 0,
        "torn_tail": torn,
    }
    for rec in records:
        kind = rec.get("kind")
        if kind == "submitted":
            summary["submissions"] += 1
        elif kind == "state":
            if rec.get("state") == RETRYING:
                summary["retries"] += 1
            elif rec.get("state") == QUEUED and rec.get("requeued"):
                summary["requeues"] += 1
        elif kind == "cache_hit":
            summary["cache_hits"] += 1
        elif kind == "backpressure":
            summary["backpressure"] += 1
        elif kind == "drained":
            summary["drains"] += 1
    counts = {s: 0 for s in VALID_TRANSITIONS}
    for job in jobs.values():
        counts[job.state] += 1
    summary["by_state"] = {s: n for s, n in counts.items() if n}
    return summary
