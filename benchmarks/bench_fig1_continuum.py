"""FIG1 -- Figure 1: density contours, near-continuum Mach 4 / 30-degree wedge.

Paper reads off the figure: shock angle exactly the theoretical 45
degrees, post-shock density 3.7x freestream (Rankine-Hugoniot), a
correct Prandtl-Meyer fan at the corner, and a shock thickness of 3 cell
widths.  The bench regenerates the field, extracts the same numbers, and
times the extraction pipeline.
"""

import math

from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import (
    expansion_fan_samples,
    fit_shock_angle,
    post_shock_plateau,
    shock_thickness,
)
from repro.analysis.contour import render_ascii, save_field_npz
from repro.constants import (
    PAPER_DENSITY_RATIO,
    PAPER_SHOCK_ANGLE_DEG,
    PAPER_SHOCK_THICKNESS_CONTINUUM,
)
from repro.physics import theory

from benchmarks.common import OUT_DIR, WEDGE


def test_fig1_density_contours(benchmark, continuum_solution, emit):
    sim = continuum_solution
    rho = sim.density_ratio_field()

    # The timed artifact: the full figure-1 metrology pipeline.
    def regenerate():
        fit = fit_shock_angle(rho, WEDGE)
        plateau = post_shock_plateau(rho, WEDGE, fit)
        thick = shock_thickness(rho, WEDGE, fit, plateau=plateau)
        return fit, plateau, thick

    fit, plateau, thick = benchmark(regenerate)

    # Prandtl-Meyer fan check: sample the fan along the theoretical
    # characteristics for 10/20/30-degree turns from the post-shock
    # state.
    m2 = theory.post_oblique_shock_mach(4.0, math.radians(30.0))
    turns = (10.0, 20.0, 30.0)
    measured_fan, predicted_fan = expansion_fan_samples(
        rho, WEDGE, turns, mach_post_shock=m2, plateau=plateau
    )

    rec = ExperimentRecord("FIG1", "near-continuum density contours")
    rec.add("shock angle (deg)", PAPER_SHOCK_ANGLE_DEG, fit.angle_deg, rel_tol=0.07)
    rec.add(
        "post-shock density ratio", PAPER_DENSITY_RATIO, plateau, rel_tol=0.08
    )
    rec.add(
        "shock thickness (cells)",
        PAPER_SHOCK_THICKNESS_CONTINUUM,
        thick,
        rel_tol=0.5,
        note="resolution-limited; paper reads 3 off fig 1",
    )
    for t, meas, pred in zip(turns, measured_fan, predicted_fan):
        rec.add(
            f"PM fan density after {t:.0f} deg turn",
            pred,
            float(meas),
            rel_tol=0.3,
            note=f"from M2={m2:.2f} along the fan characteristic",
        )
    rec.add("freestream plateau", 1.0, float(rho[5:15, 40:60].mean()), rel_tol=0.05)
    emit(rec)

    OUT_DIR.mkdir(exist_ok=True)
    save_field_npz(str(OUT_DIR / "fig1_continuum.npz"), density_ratio=rho)
    (OUT_DIR / "fig1_contours.txt").write_text(render_ascii(rho))
    assert rec.metrics[0].agrees()
    assert rec.metrics[1].agrees()
