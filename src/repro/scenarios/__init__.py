"""Declarative scenario registry (spec -> simulation -> validation).

Public surface::

    from repro.scenarios import get, names, ScenarioSpec
    spec = get("cylinder")
    sim = spec.build_simulation()
    report = validate_scenario(spec)   # golden / closed-form checks

Importing this package registers the built-in library
(:mod:`repro.scenarios.library`).  Regenerate golden files with
``python -m repro.scenarios <name>``.
"""

from repro.scenarios.spec import OVERRIDE_KEYS, ScenarioSpec
from repro.scenarios.registry import all_specs, get, names, register
from repro.scenarios.golden import (
    ScenarioRun,
    ValidationReport,
    regenerate_golden,
    require_valid,
    run_scenario,
    validate_contract,
    validate_scenario,
)
from repro.scenarios import library  # noqa: F401  (registers the library)

__all__ = [
    "ScenarioSpec",
    "ScenarioRun",
    "ValidationReport",
    "OVERRIDE_KEYS",
    "register",
    "get",
    "names",
    "all_specs",
    "run_scenario",
    "validate_scenario",
    "validate_contract",
    "require_valid",
    "regenerate_golden",
]
