#!/usr/bin/env python
"""Quickstart: Mach 4 flow over a 30-degree wedge in ~100 lines of output.

Runs a reduced-scale version of the paper's validation problem, prints
live diagnostics, an ASCII density-contour map, and the figure-1
validation numbers (shock angle, Rankine-Hugoniot density ratio)
against theory.

Run:
    python examples/quickstart.py
"""

import math
import time

from repro import Domain, Freestream, Simulation, SimulationConfig, Wedge
from repro.analysis.contour import render_ascii
from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.physics import theory


def main() -> None:
    config = SimulationConfig(
        domain=Domain(nx=49, ny=32),           # half the paper's grid
        freestream=Freestream(
            mach=4.0,
            c_mp=0.14,           # thermal speed, cells per time step
            lambda_mfp=0.0,      # near-continuum validation limit
            density=12.0,        # particles per cell
        ),
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=1,
    )
    sim = Simulation(config)
    print(
        f"seeded {sim.particles.n} flow particles + "
        f"{sim.reservoir.size} reservoir particles"
    )

    t0 = time.time()
    transient, averaging = 250, 250
    for chunk in range(5):
        diag = sim.run(transient // 5)
        print(
            f"step {diag.step:4d}: {diag.n_flow} in flow, "
            f"{diag.n_collisions} collisions, "
            f"pairing efficiency {diag.pairing_efficiency:.2f}"
        )
    sim.run(averaging, sample=True)
    print(f"done in {time.time() - t0:.1f} s")

    rho = sim.density_ratio_field()
    print("\nDensity contours (flow left to right, wedge on the floor):")
    print(render_ascii(rho))

    fit = fit_shock_angle(rho, config.wedge)
    plateau = post_shock_plateau(rho, config.wedge, fit)
    beta_theory = theory.shock_angle_deg(4.0, 30.0)
    ratio_theory = theory.oblique_shock_density_ratio(4.0, math.radians(30.0))
    print(f"\nshock angle:    {fit.angle_deg:6.2f} deg   (theory {beta_theory:.2f})")
    print(f"density ratio:  {plateau:6.2f}       (Rankine-Hugoniot {ratio_theory:.2f})")


if __name__ == "__main__":
    main()
