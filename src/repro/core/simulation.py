"""The wind-tunnel simulation driver (the NumPy reference engine).

Assembles the four sub-steps of the algorithm -- collisionless motion,
boundary enforcement, collision-partner selection (cell indexing +
randomized sort + even/odd pairing + selection rule) and collision --
into the paper's time-stepping loop, with the reservoir running its
self-collisions on the side and the sampler accumulating time averages
after the transient.

This driver *is* the physics-reference ("float64") engine; the CM-2
emulation engine (:mod:`repro.core.engine_cm`) runs the identical loop
in fixed point with cost accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_SORT_SCALE
from repro.core import motion
from repro.core.boundary import BoundaryStats, WindTunnelBoundaries
from repro.core.cells import assign_cells
from repro.core.collision import collide_adjacent_pairs, collide_pairs
from repro.core.pairing import (
    even_odd_pairs,
    pairing_efficiency,
    reflection_pairs,
)
from repro.core.particles import ParticleArrays
from repro.core.reservoir import Reservoir
from repro.core.sampling import CellSampler
from repro.core.selection import fused_select_collide, select_collisions
from repro.core.sortstep import IncrementalSorter, sort_by_cell
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.perf import PerfLedger
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel, maxwell_molecule
from repro.rng import SeedLike, make_rng

#: Maximum rejection-sampling passes when seeding around the wedge.
#: Each pass re-draws only the offending particles (rejection fraction
#: ~ wedge area / domain area < 1/2 per pass), so 64 passes put the
#: residual probability below 2**-64 for any legal geometry; a failure
#: to converge indicates a broken geometry and raises.
SEED_REJECTION_PASSES = 64


def seed_flow_particles(
    config: "SimulationConfig",
    rng: np.random.Generator,
    volume_fractions: Optional[np.ndarray] = None,
) -> ParticleArrays:
    """Fill the open region at freestream density (rejection sample).

    The seeding recipe shared by :class:`Simulation` and the ensemble
    engine (:mod:`repro.ensemble`): the draw order is part of the
    determinism contract -- velocities, rotational state, positions,
    permutation table, then the wedge rejection re-draws -- so a given
    ``rng`` state always yields the same population bitwise.

    ``volume_fractions`` is the (flattened or gridded) open-area field;
    derived from the config when omitted.
    """
    if volume_fractions is None:
        if config.wedge is not None:
            volume_fractions = config.wedge.open_volume_fractions(
                config.domain
            )
        else:
            volume_fractions = np.ones(config.domain.shape)
    open_area = float(np.asarray(volume_fractions).sum())
    n_target = int(round(config.freestream.density * open_area))
    parts = ParticleArrays.from_freestream(
        rng,
        n_target,
        config.freestream,
        x_range=(0.0, config.domain.width),
        y_range=(0.0, config.domain.height),
        rotational_dof=config.model.rotational_dof,
    )
    if config.wedge is None:
        return parts
    # Rejection passes: re-draw positions of particles that landed
    # inside the wedge until none remain (area ratio ~0.97 per pass).
    for _ in range(SEED_REJECTION_PASSES):
        bad = config.wedge.inside(parts.x, parts.y)
        n_bad = int(np.count_nonzero(bad))
        if n_bad == 0:
            break
        parts.x[bad] = rng.uniform(0.0, config.domain.width, size=n_bad)
        parts.y[bad] = rng.uniform(0.0, config.domain.height, size=n_bad)
    # Never hand back a population with particles embedded in the
    # solid: a run started from such a state silently corrupts the
    # early flow field (phantom wedge-interior collisions and bogus
    # surface loads).
    n_bad = int(np.count_nonzero(config.wedge.inside(parts.x, parts.y)))
    if n_bad:
        raise ConfigurationError(
            f"flow seeding failed to converge: {n_bad} particles "
            f"remain inside the wedge after {SEED_REJECTION_PASSES} "
            "rejection passes (is the open area a vanishing "
            "fraction of the domain?)"
        )
    return parts


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to define a wind-tunnel run.

    The defaults reproduce a scaled version of the paper's validation
    configuration: Mach 4 flow over a 30-degree wedge (leading edge 20
    cells in, 25-cell base) on a 98 x 64 grid.

    Parameters
    ----------
    domain, freestream, wedge:
        The tunnel, the oncoming stream, and the body (``None`` for an
        empty tunnel).  ``wedge`` accepts any body implementing the
        :mod:`repro.geometry.bodies` seam (:class:`Wedge`,
        :class:`~repro.geometry.bodies.Cylinder`,
        :class:`~repro.geometry.bodies.Step`); the field keeps its
        historical name for compatibility.
    model:
        Molecular model (Maxwell diatomic by default).
    sort_scale:
        Randomization factor of the sort keys (1 disables mixing; the
        ablation configuration).
    sort_kernel:
        Hot-path ordering kernel: ``"incremental"`` (default) maintains
        an indexed cell-contiguous order across steps (temporal
        coherence; host-performance mode), ``"counting"`` physically
        re-sorts every step with the fused counting sort (the
        paper-faithful CM-2 rank-sort analogue, bitwise identical to
        the pre-incremental engine), ``"scaled-key"`` the legacy wide
        argsort.  ``hotpath=False`` runs always use ``"scaled-key"``.
    plunger_trigger:
        Upstream plunger withdrawal point, cell widths.
    reservoir_fraction:
        Initial reservoir population as a fraction of the flow
        population (the paper idles ~10% of its particles there).
    reservoir_mix_rounds:
        Reservoir self-collision rounds per step.
    seed:
        Master seed; every sub-stream derives from it.
    wall_model:
        Tunnel floor/ceiling gas-surface model (see
        :data:`repro.core.boundary.WALL_MODELS`); the paper's inviscid
        "specular" by default.
    accommodation:
        Maxwell-model accommodation coefficient (only the "maxwell"
        wall model reads it).
    scenario:
        Registry id of the scenario this config was built from
        (``None`` for hand-assembled configs).  Pure metadata: carried
        into snapshots and telemetry, never read by the physics.
    """

    domain: Domain = field(default_factory=Domain)
    freestream: Freestream = field(default_factory=Freestream)
    wedge: Optional[Wedge] = field(default_factory=Wedge)
    model: MolecularModel = field(default_factory=maxwell_molecule)
    sort_scale: int = DEFAULT_SORT_SCALE
    sort_kernel: str = "incremental"
    plunger_trigger: float = 4.0
    reservoir_fraction: float = 0.1
    reservoir_mix_rounds: int = 1
    seed: SeedLike = None
    wall_model: str = "specular"
    accommodation: float = 1.0
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.wedge is not None:
            self.wedge.validate_in(self.domain)
            if isinstance(self.wedge, Wedge):
                self._warn_if_detached()
        if not 0.0 <= self.reservoir_fraction <= 1.0:
            raise ConfigurationError("reservoir_fraction must be in [0, 1]")
        if self.reservoir_mix_rounds < 0:
            raise ConfigurationError("reservoir_mix_rounds must be >= 0")
        if self.sort_kernel not in ("incremental", "counting", "scaled-key"):
            raise ConfigurationError(
                f"unknown sort_kernel {self.sort_kernel!r}; expected "
                "'incremental', 'counting' or 'scaled-key'"
            )
        self.freestream.check_selection_rule_validity()

    def _warn_if_detached(self) -> None:
        """Warn when the wedge angle detaches the shock at this Mach.

        Detached (bow-shock) flows simulate fine, but the theta-beta-M
        validation metrology assumes an attached oblique shock, so the
        configuration flags the regime change instead of letting the
        analysis fail mysteriously later.
        """
        import math
        import warnings

        from repro.physics import theory

        try:
            m_min = theory.minimum_attachment_mach(
                math.radians(self.wedge.angle_deg), self.freestream.gamma
            )
        except ConfigurationError:
            m_min = float("inf")
        if self.freestream.mach < m_min:
            warnings.warn(
                f"Mach {self.freestream.mach:g} is below the attachment "
                f"limit {m_min:.2f} for a {self.wedge.angle_deg:g} deg "
                "wedge: expect a detached bow shock (oblique-shock "
                "metrology will not apply)",
                stacklevel=3,
            )


@dataclass(frozen=True)
class StepDiagnostics:
    """Per-step observability: what the step did and what it conserved."""

    step: int
    n_flow: int
    n_reservoir: int
    n_candidates: int
    n_collisions: int
    pairing_efficiency: float
    mean_collision_probability: float
    boundary: BoundaryStats
    total_energy: float
    momentum_x: float
    #: Fraction of flow particles whose cell changed this step
    #: (``None`` outside the incremental sort kernel).
    sort_moved_fraction: Optional[float] = None
    #: Full order rebuilds performed this step: 0/1 serially, up to the
    #: worker count on sharded runs (``None`` outside the incremental
    #: kernel).
    sort_rebuilds: Optional[int] = None
    #: Wall-clock seconds by phase for this step (from the perf ledger;
    #: ``None`` when the ledger is disabled).
    phase_seconds: Optional[dict] = None
    #: Recovery events absorbed on the way to this (completed) step --
    #: a tuple of :class:`repro.resilience.supervisor.RecoveryEvent` --
    #: set only by supervised execution; ``None`` on an undisturbed step.
    recovery: Optional[tuple] = None


class SerialBackend:
    """In-process execution of the step loop on the whole domain.

    The default backend: one worker (this process) owns every cell and
    the master RNG stream.  The sharded backend
    (:class:`repro.parallel.backend.ShardedBackend`) implements the same
    four-method seam -- ``bind`` / ``step`` / ``gather`` / ``close`` --
    over slab-decomposed worker processes; :class:`Simulation` only ever
    talks to the seam.
    """

    #: Worker count the backend runs with (diagnostic; 1 for serial).
    n_workers = 1

    def bind(self, sim: "Simulation") -> "SerialBackend":
        """Attach to a fully constructed simulation (no-op serially)."""
        return self

    def gather(self, sim: "Simulation") -> None:
        """Make ``sim.particles``/samplers current (no-op serially)."""

    def close(self) -> None:
        """Release backend resources (no-op serially)."""

    def step(self, sim: "Simulation", sample: bool = False) -> StepDiagnostics:
        """Advance ``sim`` by one time step."""
        cfg = sim.config
        parts = sim.particles
        perf = sim.perf

        # 1+2) Collisionless motion, then boundary conditions (may
        #    rebuild the population arrays).  One perf phase: the paper
        #    reports "particle motion and boundary interaction" as a
        #    single 14% line item.  Surface loads accumulate only
        #    during sampling steps.
        with perf.phase("motion"):
            motion.advance(parts)
            sim.boundaries.surface_sampler = (
                sim.surface if (sample and sim.surface is not None) else None
            )
            parts, bstats = sim.boundaries.apply_rebuilding(
                parts, sim.reservoir, sim.rng
            )

        sort_moved_fraction = None
        sort_rebuilds = None
        if sim.sort_state is not None:
            # 3a-inc) Temporal-coherence path: cell indexing + mover
            #    detection are the "index" phase (outside the paper's
            #    four-phase split); "sort" is only the order
            #    maintenance -- merge repair or narrow-key rebuild plus
            #    the histogram refresh.  No particle data moves.
            with perf.phase("index"):
                assign_cells(parts, cfg.domain)
                sim.sort_state.detect(parts)
            with perf.phase("sort"):
                sres = sim.sort_state.update(parts)
            sort_moved_fraction = sres.moved_fraction
            sort_rebuilds = 1 if sres.rebuilt else 0

            # 3b+4-inc) Reflection pairing, then the fused selection/
            #    collision pass.  The fused kernel hands back the
            #    timestamp of its internal selection/collision boundary
            #    so the ledger keeps the paper's two line items.
            t_sel0 = time.perf_counter()
            rpairs = reflection_pairs(
                sres.order, sres.counts, sres.offsets, sim.rng,
                scratch=parts.scratch,
            )
            fused = fused_select_collide(
                parts,
                rpairs,
                cfg.freestream,
                cfg.model,
                sres.counts,
                volume_fractions=sim._vf_flat,
                rng=sim.rng,
                internal_exchange_probability=(
                    cfg.model.internal_exchange_probability
                ),
            )
            t_end = time.perf_counter()
            perf.record("selection", fused.t_boundary - t_sel0)
            perf.record("collision", t_end - fused.t_boundary)
            if perf.enabled and perf.tracer is not None:
                perf.tracer.record("selection", t_sel0, fused.t_boundary)
                perf.tracer.record("collision", fused.t_boundary, t_end)

            n_candidates = rpairs.n_pairs
            n_collisions = fused.n_collisions
            pair_eff = (
                rpairs.n_pairs / (parts.n // 2) if parts.n >= 2 else 0.0
            )
            mean_p = (
                fused.probability_sum / rpairs.n_pairs
                if rpairs.n_pairs else 0.0
            )
        else:
            # 3a) Cell indexing + the fused counting sort: one kernel
            #    yields the sorted order *and* the per-cell histogram
            #    the selection rule needs (no separate bincount pass).
            with perf.phase("sort"):
                assign_cells(parts, cfg.domain)
                kernel = "scaled-key"
                if sim.hotpath and cfg.sort_kernel != "incremental":
                    kernel = cfg.sort_kernel
                elif sim.hotpath:
                    kernel = "counting"
                sort_res = sort_by_cell(
                    parts, rng=sim.rng, scale=cfg.sort_scale,
                    n_cells=cfg.domain.n_cells,
                    kernel=kernel,
                )
                counts = sort_res.counts

            # 3b) Pairing + the selection rule.
            with perf.phase("selection"):
                pairs = even_odd_pairs(parts.cell, scratch=parts.scratch)
                if parts.scratch is not None:
                    draws = parts.scratch.array("sel_draws", pairs.n_pairs)
                    sim.rng.random(out=draws)
                else:
                    draws = None
                selection = select_collisions(
                    parts,
                    pairs,
                    cfg.freestream,
                    cfg.model,
                    counts,
                    volume_fractions=sim._vf_flat,
                    rng=sim.rng,
                    draws=draws,
                )

            # 4) Collision of selected partners.  Sorted even/odd pairs
            #    are adjacent rows, so the hot path collides contiguous
            #    two-row blocks instead of gather/scatter by address.
            with perf.phase("collision"):
                if sim.hotpath and pairs.adjacent:
                    collide_adjacent_pairs(
                        parts,
                        np.flatnonzero(selection.accept),
                        rng=sim.rng,
                        internal_exchange_probability=(
                            cfg.model.internal_exchange_probability
                        ),
                    )
                else:
                    first = pairs.first[selection.accept]
                    second = pairs.second[selection.accept]
                    collide_pairs(
                        parts,
                        first,
                        second,
                        rng=sim.rng,
                        internal_exchange_probability=(
                            cfg.model.internal_exchange_probability
                        ),
                    )
            cand = pairs.same_cell
            n_candidates = pairs.n_candidates
            n_collisions = selection.n_collisions
            pair_eff = pairing_efficiency(pairs)
            mean_p = (
                float(selection.probability[cand].mean())
                if cand.any() else 0.0
            )

        # Side work: the reservoir Gaussianizes itself.  Charged to its
        # own phase -- the paper's four-phase split does not include it.
        if cfg.reservoir_mix_rounds:
            with perf.phase("reservoir"):
                sim.reservoir.mix(sim.rng, rounds=cfg.reservoir_mix_rounds)

        sim.particles = parts
        sim.step_count += 1
        if sample:
            sim.sampler.accumulate(parts)
            if sim.surface is not None:
                sim.surface.end_step()
            for probe in sim.probes:
                probe.sample(parts)

        perf.end_step(n_particles=parts.n)
        return StepDiagnostics(
            step=sim.step_count,
            n_flow=parts.n,
            n_reservoir=sim.reservoir.size,
            n_candidates=n_candidates,
            n_collisions=n_collisions,
            pairing_efficiency=pair_eff,
            mean_collision_probability=mean_p,
            boundary=bstats,
            total_energy=parts.total_energy(),
            momentum_x=float(parts.u.sum()),
            sort_moved_fraction=sort_moved_fraction,
            sort_rebuilds=sort_rebuilds,
            phase_seconds=perf.last_step_seconds if perf.enabled else None,
        )


class Simulation:
    """The reference wind-tunnel simulation.

    Typical use::

        sim = Simulation(SimulationConfig(seed=7))
        sim.run(300)                  # transient to steady state
        sim.run(400, sample=True)     # accumulate the time average
        rho = sim.sampler.density_ratio(sim.config.freestream.density)

    ``backend`` selects the execution engine: ``None`` (the default)
    steps in-process via :class:`SerialBackend`; a
    :class:`repro.parallel.backend.ShardedBackend` decomposes the grid
    into x-slabs and steps them on worker processes.

    ``telemetry`` attaches a :class:`repro.telemetry.Telemetry` hub:
    every completed step feeds it diagnostics (metrics, spans, physics
    observables), and sharded backends allocate shared-memory span
    rings for their workers when one is present at bind time.
    """

    def __init__(
        self,
        config: SimulationConfig,
        hotpath: bool = True,
        backend=None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.rng = make_rng(config.seed)
        self.step_count = 0
        #: Telemetry hub (set before the backend binds so sharded
        #: backends can size their worker span rings; ``None`` disables
        #: all telemetry at zero per-step cost).
        self.telemetry = telemetry
        #: ``hotpath=False`` runs the legacy allocating kernels
        #: (argsort of wide scaled keys, gather/scatter collisions,
        #: full-array boundary passes) -- the pre-overhaul baseline the
        #: hot-path benchmark compares against, and a fallback should a
        #: fused kernel ever be in doubt.
        self.hotpath = bool(hotpath)
        #: Per-phase wall-clock ledger (the paper's motion/sort/
        #: selection/collision split, measured).
        self.perf = PerfLedger()

        # Fractional cell volumes (the selection rule and the sampler
        # both need them when a wedge cuts the grid).
        if config.wedge is not None:
            self.volume_fractions = config.wedge.open_volume_fractions(
                config.domain
            )
        else:
            self.volume_fractions = np.ones(config.domain.shape)
        self._vf_flat = self.volume_fractions.reshape(-1)

        self.boundaries = WindTunnelBoundaries(
            domain=config.domain,
            freestream=config.freestream,
            wedge=config.wedge,
            plunger_trigger=config.plunger_trigger,
            wall_model=config.wall_model,
            accommodation=config.accommodation,
        )
        self.particles = self._seed_flow()
        self.reservoir = Reservoir(
            config.freestream, rotational_dof=config.model.rotational_dof
        )
        n_res = int(round(config.reservoir_fraction * self.particles.n))
        self.reservoir.deposit(self.rng, n_res)
        self.sampler = CellSampler(config.domain, self.volume_fractions)
        #: Surface-load accumulator (pressure / drag on the wedge);
        #: armed only during sampling steps so its averages align with
        #: the field averages.  Strip-resolved surface metrology is
        #: wedge-specific; other bodies run without it.
        if isinstance(config.wedge, Wedge):
            from repro.core.surface import SurfaceSampler

            self.surface = SurfaceSampler(config.wedge)
        else:
            self.surface = None
        #: Optional extra probes (e.g. analysis.vdf.VDFProbe); each
        #: object's ``sample(particles)`` runs on sampling steps.
        self.probes: list = []
        if self.hotpath:
            self.particles.enable_scratch()
            self.reservoir.particles.enable_scratch()
        #: Incremental-sort state (the temporal-coherence kernel):
        #: owns the cached per-particle cell array and the canonical
        #: order permutation; ``None`` for the physical-sort kernels.
        #: Sharded backends give each worker its own sorter instead.
        if self.hotpath and config.sort_kernel == "incremental":
            self.sort_state = IncrementalSorter(config.domain.n_cells)
        else:
            self.sort_state = None
        assign_cells(self.particles, config.domain)
        #: Execution backend (the seam): bound last, once every piece of
        #: state it may need to decompose or mirror exists.
        self.backend = backend if backend is not None else SerialBackend()
        self.backend.bind(self)
        if telemetry is not None:
            telemetry.attach(self)

    # -- construction helpers ---------------------------------------------

    def _seed_flow(self) -> ParticleArrays:
        """Fill the open region at freestream density (rejection sample)."""
        return seed_flow_particles(self.config, self.rng, self._vf_flat)

    # -- stepping -----------------------------------------------------------

    def step(self, sample: bool = False) -> StepDiagnostics:
        """Advance the simulation by one time step (via the backend)."""
        diag = self.backend.step(self, sample=sample)
        if self.telemetry is not None:
            self.telemetry.on_step(self, diag)
        return diag

    def gather(self) -> None:
        """Synchronize driver-side state with the backend.

        Sharded runs keep the authoritative particle population inside
        the worker shards; after ``gather()`` the driver's
        ``self.particles`` (and reservoir) reflect the current global
        state.  Serial runs are always current, so this is a no-op.
        """
        self.backend.gather(self)

    def close(self) -> None:
        """Shut down the backend (terminates sharded worker processes)."""
        self.backend.close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, n_steps: int, sample: bool = False) -> StepDiagnostics:
        """Run ``n_steps`` steps; returns the final step's diagnostics."""
        if n_steps <= 0:
            raise ConfigurationError("n_steps must be positive")
        diag = None
        for _ in range(n_steps):
            diag = self.step(sample=sample)
        return diag

    # -- results ------------------------------------------------------------

    def density_ratio_field(self, correct_volumes: bool = True) -> np.ndarray:
        """Time-averaged density / freestream density, ``(nx, ny)``."""
        return self.sampler.density_ratio(
            self.config.freestream.density, correct_volumes=correct_volumes
        )
