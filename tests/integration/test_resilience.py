"""Integration tests of fault injection, auditing and supervised recovery.

The contract under test (ROADMAP: fault-tolerant execution):

* Every armed fault kind surfaces as its typed error with structured
  context -- never a bare ``RuntimeError``, never a silent wrong answer.
* ``ShardedBackend.close`` is idempotent and always reaps its worker
  processes, even after a crash or a wedged barrier.
* A supervised run with an injected mid-run fault recovers
  automatically and -- at the same worker count -- finishes **bitwise
  identical** to an unfailed run (the counter-based per-shard RNG
  streams make the replay exact).
* A supervised run directory is resumable from a different process.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import (
    CheckpointCorruptionError,
    ExchangeOverflowError,
    InvariantViolationError,
    RecoveryExhaustedError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.io.snapshots import load_simulation, save_simulation
from repro.parallel.backend import ShardedBackend
from repro.physics.freestream import Freestream
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InvariantAuditor,
    RunJournal,
    SupervisedRun,
)

pytestmark = pytest.mark.resilience

PARTICLE_COLUMNS = ("x", "y", "u", "v", "w", "rot", "perm", "cell")

#: Short barrier timeout for tests that expect a death/hang detection.
FAST_TIMEOUT = 5.0


def _small_config(seed: int = 42, nx: int = 32, ny: int = 16) -> SimulationConfig:
    return SimulationConfig(
        domain=Domain(nx=nx, ny=ny),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0),
        wedge=Wedge(x_leading=8.0, base=9.0, angle_deg=30.0),
        seed=seed,
    )


def _inline_sim(seed=42, plan=None, workers=2) -> Simulation:
    return Simulation(
        _small_config(seed),
        backend=ShardedBackend(workers, processes=False, fault_plan=plan),
    )


def _assert_sims_equal(a: Simulation, b: Simulation, what: str) -> None:
    assert a.step_count == b.step_count
    for pa, pb, pop in (
        (a.particles, b.particles, "flow"),
        (a.reservoir.particles, b.reservoir.particles, "reservoir"),
    ):
        assert pa.n == pb.n, f"{what} {pop}: sizes differ"
        for col in PARTICLE_COLUMNS:
            assert np.array_equal(getattr(pa, col), getattr(pb, col)), (
                f"{what} {pop}: column {col} not bitwise identical"
            )
    assert a.boundaries.plunger.position == b.boundaries.plunger.position
    assert np.array_equal(a.sampler._count, b.sampler._count)
    assert np.array_equal(a.sampler._mu, b.sampler._mu)
    assert np.array_equal(a.sampler._e_trans, b.sampler._e_trans)


class TestFaultInjection:
    """Each fault kind fires deterministically as its typed error."""

    def test_inline_worker_exception(self):
        plan = FaultPlan([FaultSpec("exception", step=4, shard=1)])
        sim = _inline_sim(plan=plan)
        sim.run(4)
        with pytest.raises(WorkerCrashError, match="injected") as exc_info:
            sim.step()
        assert exc_info.value.context["shard"] == 1
        assert exc_info.value.context["step"] == 4
        sim.close()

    def test_inline_crash_raises_instead_of_exiting(self):
        # ``crash`` must never take down the host process in inline mode.
        plan = FaultPlan([FaultSpec("crash", step=2, shard=0)])
        sim = _inline_sim(plan=plan)
        with pytest.raises(WorkerCrashError, match="inline"):
            sim.run(5)
        sim.close()

    def test_overflow_forces_typed_error(self):
        plan = FaultPlan([FaultSpec("overflow", step=2, capacity=0)])
        sim = _inline_sim(plan=plan)
        with pytest.raises(ExchangeOverflowError) as exc_info:
            sim.run(10)
        ctx = exc_info.value.context
        assert ctx["injected"] is True
        assert ctx["migrants"] > ctx["capacity"] == 0
        assert "channel_capacity" in str(exc_info.value)
        sim.close()

    @pytest.mark.filterwarnings("ignore:invalid value encountered in cast")
    def test_corrupt_payload_is_caught_by_the_auditor(self):
        plan = FaultPlan([FaultSpec("corrupt", step=3)], seed=7)
        sim = _inline_sim(plan=plan)
        auditor = InvariantAuditor()
        auditor.rebase(sim)
        with pytest.raises(InvariantViolationError) as exc_info:
            for _ in range(10):
                auditor.observe(sim.step())
                auditor.audit(sim)
        assert exc_info.value.context["check"] in ("finite", "range")
        sim.close()

    def test_truncated_checkpoint_is_detected_on_load(self, tmp_path):
        plan = FaultPlan([FaultSpec("truncate", step=0)])
        sim = Simulation(_small_config())
        sim.run(3)
        path = tmp_path / "snap.npz"
        save_simulation(sim, path, fault_plan=plan)
        with pytest.raises(CheckpointCorruptionError) as exc_info:
            load_simulation(path)
        assert "path" in exc_info.value.context

    def test_unarmed_plan_changes_nothing(self):
        # A bound-but-empty plan must not perturb the trajectory.
        ref = _inline_sim(seed=3)
        ref.run(8)
        ref.gather()
        sim = _inline_sim(seed=3, plan=FaultPlan([]))
        sim.run(8)
        sim.gather()
        _assert_sims_equal(ref, sim, "unarmed plan")
        ref.close()
        sim.close()


@pytest.mark.sharded
class TestProcessFaults:
    """Worker-process death and hangs, detected at the barrier."""

    def test_worker_crash_is_detected(self):
        plan = FaultPlan([FaultSpec("crash", step=3, shard=0)])
        sim = Simulation(
            _small_config(),
            backend=ShardedBackend(
                2, barrier_timeout=FAST_TIMEOUT, fault_plan=plan
            ),
        )
        with pytest.raises(WorkerCrashError) as exc_info:
            sim.run(8)
        assert exc_info.value.context.get("dead") or (
            "shard" in exc_info.value.context
        )
        sim.close()  # second close after the emergency stop: no-op
        assert all(not p.is_alive() for p in sim.backend._procs)

    def test_worker_hang_times_out_as_typed_error(self):
        plan = FaultPlan([FaultSpec("hang", step=2, shard=1, seconds=60.0)])
        sim = Simulation(
            _small_config(),
            backend=ShardedBackend(2, barrier_timeout=2.0, fault_plan=plan),
        )
        with pytest.raises(WorkerHangError) as exc_info:
            sim.run(8)
        assert exc_info.value.context["timeout_s"] == 2.0
        sim.close()
        assert all(not p.is_alive() for p in sim.backend._procs)

    def test_close_is_idempotent_and_reaps(self):
        sim = Simulation(_small_config(), backend=ShardedBackend(2))
        sim.run(2)
        procs = list(sim.backend._procs)
        sim.close()
        sim.close()
        assert all(not p.is_alive() for p in procs)

    def test_simulation_is_a_context_manager(self):
        with Simulation(_small_config(), backend=ShardedBackend(2)) as sim:
            sim.run(2)
            procs = list(sim.backend._procs)
        assert all(not p.is_alive() for p in procs)


class TestSupervisedRecovery:
    """The supervisor restores, replays and finishes -- bitwise."""

    N_STEPS = 20

    def _reference(self, seed=42) -> Simulation:
        ref = _inline_sim(seed=seed)
        # Same transient/sampling split the supervised run uses.
        ref.run(12)
        ref.run(self.N_STEPS - 12, sample=True)
        ref.gather()
        return ref

    @pytest.mark.parametrize(
        "spec,audit_every",
        [
            pytest.param(
                FaultSpec("exception", step=9, shard=1), 0, id="exception"
            ),
            pytest.param(
                FaultSpec("overflow", step=6, capacity=0), 0, id="overflow"
            ),
            pytest.param(FaultSpec("corrupt", step=6), 1, id="corrupt"),
        ],
    )
    @pytest.mark.filterwarnings("ignore:invalid value encountered in cast")
    def test_recovery_is_bitwise_identical(self, tmp_path, spec, audit_every):
        ref = self._reference()
        plan = FaultPlan([spec], seed=5)
        run = SupervisedRun(
            _inline_sim(plan=plan),
            tmp_path / "run",
            checkpoint_every=5,
            audit_every=audit_every,
            max_retries=3,
            backoff_base=0.0,
            fault_plan=plan,
        )
        diag = run.run_schedule([(12, False), (self.N_STEPS - 12, True)])
        run.sim.gather()
        assert run.retries == 1
        _assert_sims_equal(ref, run.sim, "supervised recovery")
        assert diag is not None and diag.step == self.N_STEPS
        events = [e for e in run.journal.events if e["kind"] == "recovery"]
        assert len(events) == 1
        assert events[0]["restored_step"] <= events[0]["step"]
        run.close()
        ref.close()

    def test_recovery_events_surface_in_diagnostics(self, tmp_path):
        plan = FaultPlan([FaultSpec("exception", step=7, shard=0)])
        run = SupervisedRun(
            _inline_sim(plan=plan),
            tmp_path / "run",
            checkpoint_every=5,
            audit_every=0,
            backoff_base=0.0,
            fault_plan=plan,
        )
        recovered = []
        for _ in range(10):
            diag = run.step()
            if diag.recovery:
                recovered.append(diag)
        assert len(recovered) == 1
        (event,) = recovered[0].recovery
        assert event.error == "WorkerCrashError"
        assert event.restored_step == 5
        run.close()

    def test_torn_checkpoint_falls_back_to_older(self, tmp_path):
        ref = self._reference(seed=11)
        plan = FaultPlan(
            [
                FaultSpec("truncate", step=10),
                FaultSpec("exception", step=12, shard=0),
            ]
        )
        run = SupervisedRun(
            _inline_sim(seed=11, plan=plan),
            tmp_path / "run",
            checkpoint_every=5,
            audit_every=0,
            backoff_base=0.0,
            fault_plan=plan,
        )
        run.run_schedule([(12, False), (self.N_STEPS - 12, True)])
        run.sim.gather()
        kinds = [e["kind"] for e in run.journal.events]
        assert "checkpoint_corrupt" in kinds
        assert "recovery" in kinds
        _assert_sims_equal(ref, run.sim, "torn-checkpoint fallback")
        run.close()
        ref.close()

    def test_retries_exhaust_into_typed_error(self, tmp_path):
        plan = FaultPlan([FaultSpec("exception", step=3, shard=0)])
        run = SupervisedRun(
            _inline_sim(plan=plan),
            tmp_path / "run",
            checkpoint_every=5,
            audit_every=0,
            max_retries=0,
            backoff_base=0.0,
            fault_plan=plan,
        )
        with pytest.raises(RecoveryExhaustedError) as exc_info:
            run.run_schedule([(10, False)])
        assert exc_info.value.context["last_error"] == "WorkerCrashError"
        assert [e["kind"] for e in run.journal.events] == ["exhausted"]
        run.close()

    def test_degrades_to_serial_after_repeated_parallel_faults(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec("exception", step=4, shard=0),
                FaultSpec("exception", step=8, shard=1),
            ]
        )
        run = SupervisedRun(
            _inline_sim(plan=plan),
            tmp_path / "run",
            checkpoint_every=3,
            audit_every=0,
            max_retries=4,
            backoff_base=0.0,
            degrade_after=2,
            fault_plan=plan,
        )
        run.run_schedule([(14, False)])
        assert run.sim.step_count == 14
        assert run.sim.backend.n_workers == 1  # degraded to serial
        assert any(e["kind"] == "degraded" for e in run.journal.events)
        run.close()

    def test_resume_continues_bitwise(self, tmp_path):
        ref = _inline_sim(seed=13)
        ref.run(self.N_STEPS)
        ref.gather()
        run = SupervisedRun(
            _inline_sim(seed=13),
            tmp_path / "run",
            checkpoint_every=5,
            audit_every=0,
            backoff_base=0.0,
        )
        run.run_schedule([(self.N_STEPS, False)], max_steps=8)
        assert run.sim.step_count == 8
        run.close()  # simulate the process dying here

        resumed = SupervisedRun.resume(tmp_path / "run")
        resumed.run_schedule()
        resumed.sim.gather()
        assert resumed.sim.step_count == self.N_STEPS
        _assert_sims_equal(ref, resumed.sim, "resumed run")
        assert any(
            e["kind"] == "resumed" for e in RunJournal.load(tmp_path / "run")
        )
        resumed.close()
        ref.close()


@pytest.mark.sharded
class TestSupervisedProcessMode:
    """End-to-end recovery with real worker processes."""

    def test_hard_crash_recovers_bitwise(self, tmp_path):
        ref = Simulation(_small_config(seed=7), backend=ShardedBackend(2))
        ref.run(12)
        ref.gather()

        plan = FaultPlan([FaultSpec("crash", step=6, shard=0)])
        sim = Simulation(
            _small_config(seed=7),
            backend=ShardedBackend(
                2, barrier_timeout=FAST_TIMEOUT, fault_plan=plan
            ),
        )
        run = SupervisedRun(
            sim,
            tmp_path / "run",
            checkpoint_every=4,
            audit_every=4,
            max_retries=2,
            backoff_base=0.0,
            fault_plan=plan,
        )
        run.run_schedule([(12, False)])
        run.sim.gather()
        assert run.retries == 1
        _assert_sims_equal(ref, run.sim, "process-mode crash recovery")
        run.close()
        ref.close()
