"""Particle state: structure-of-arrays, one particle per virtual processor.

The paper distinguishes the **physical state** of a particle -- position
``(x, y)``, translational velocity ``(u, v, w)`` and rotational velocity
``(r1, r2)``, "in two dimensions this representation requires seven
distinct values" -- from the **computational state**, which adds the
cell index and a five-element permutation vector used by the collision
routine.

The container is a structure of arrays (SoA), the layout both the CM's
per-processor fields and NumPy vectorization want.  All methods that
grow/shrink the population return (or build) new arrays; per-step
kernels mutate columns in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.distributions import sample_maxwellian, sample_rectangular
from repro.physics.freestream import Freestream
from repro.rng import random_permutation_table


@dataclass
class ParticleArrays:
    """SoA particle population.

    Attributes
    ----------
    x, y:
        Positions, cell widths.  float64 (the CM engine mirrors state in
        fixed point and round-trips through these columns).
    u, v, w:
        Translational velocity components, cell widths / step.  The z
        component ``w`` exists even in 2-D (three translational degrees
        of freedom).
    rot:
        ``(n, rotational_dof)`` rotational velocity components
        (eq. (9): E_rot = 1/2 m r.r).
    perm:
        ``(n, 3 + rotational_dof)`` int8 permutation vectors (the
        computational state; each row is a permutation of 0..k-1).
    cell:
        int64 flattened cell index (computational state; refreshed each
        step after motion).
    z:
        Optional z position for the 3-D extension (Future Work); in the
        2-D configuration it is a zero-filled column that the kernels
        ignore.
    """

    x: np.ndarray
    y: np.ndarray
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    rot: np.ndarray
    perm: np.ndarray
    cell: np.ndarray
    z: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.z is None:
            self.z = np.zeros_like(self.x)

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls, rotational_dof: int = 2) -> "ParticleArrays":
        """A zero-particle population (e.g. a drained reservoir)."""
        k = 3 + rotational_dof
        return cls(
            x=np.empty(0),
            y=np.empty(0),
            u=np.empty(0),
            v=np.empty(0),
            w=np.empty(0),
            rot=np.empty((0, rotational_dof)),
            perm=np.empty((0, k), dtype=np.int8),
            cell=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_freestream(
        cls,
        rng: np.random.Generator,
        n: int,
        freestream: Freestream,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        rotational_dof: int = 2,
        rectangular: bool = False,
    ) -> "ParticleArrays":
        """Seed ``n`` particles uniformly in a box at freestream state.

        ``rectangular=True`` uses the cheap uniform velocity sampler
        (reservoir style); otherwise proper Maxwellian sampling.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if x_range[1] < x_range[0] or y_range[1] < y_range[0]:
            raise ConfigurationError("invalid seeding box")
        sampler = sample_rectangular if rectangular else sample_maxwellian
        vel = sampler(rng, n, freestream.c_mp, drift=freestream.drift_vector())
        rot = sampler(rng, n, freestream.c_mp, components=rotational_dof)
        return cls(
            x=rng.uniform(x_range[0], x_range[1], size=n),
            y=rng.uniform(y_range[0], y_range[1], size=n),
            u=vel[:, 0].copy(),
            v=vel[:, 1].copy(),
            w=vel[:, 2].copy(),
            rot=rot,
            perm=random_permutation_table(rng, n, length=3 + rotational_dof),
            cell=np.zeros(n, dtype=np.int64),
        )

    # -- invariants / views --------------------------------------------------

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def rotational_dof(self) -> int:
        return self.rot.shape[1]

    def validate(self) -> None:
        """Check internal consistency (used by tests and debug runs).

        Catches length mismatches, corrupted permutation rows, and
        non-finite state (NaN/inf positions or velocities) -- the
        failure modes the fault-injection tests exercise.
        """
        n = self.n
        k = 3 + self.rotational_dof
        for name in ("y", "u", "v", "w", "cell", "z"):
            col = getattr(self, name)
            if col.shape[0] != n:
                raise ConfigurationError(f"column {name} has wrong length")
        for name in ("x", "y", "u", "v", "w", "z"):
            col = getattr(self, name)
            if col.size and not np.isfinite(col).all():
                raise ConfigurationError(f"column {name} has non-finite values")
        if self.rot.size and not np.isfinite(self.rot).all():
            raise ConfigurationError("rot has non-finite values")
        if self.rot.shape != (n, self.rotational_dof):
            raise ConfigurationError("rot has wrong shape")
        if self.perm.shape != (n, k):
            raise ConfigurationError("perm has wrong shape")
        if n:
            sorted_rows = np.sort(self.perm, axis=1)
            if not np.array_equal(
                sorted_rows, np.broadcast_to(np.arange(k, dtype=np.int8), (n, k))
            ):
                raise ConfigurationError("perm rows are not permutations")

    # -- energy / momentum bookkeeping -------------------------------------

    def kinetic_energy(self) -> float:
        """Total translational kinetic energy, m = 1."""
        return 0.5 * float(
            np.dot(self.u, self.u) + np.dot(self.v, self.v) + np.dot(self.w, self.w)
        )

    def rotational_energy(self) -> float:
        """Total rotational energy 1/2 m sum(r.r) (eq. (9))."""
        return 0.5 * float((self.rot**2).sum())

    def total_energy(self) -> float:
        """Kinetic plus rotational energy."""
        return self.kinetic_energy() + self.rotational_energy()

    def momentum(self) -> np.ndarray:
        """Total linear momentum vector (m = 1)."""
        return np.array([self.u.sum(), self.v.sum(), self.w.sum()])

    # -- population surgery ----------------------------------------------

    def select(self, mask_or_index: np.ndarray) -> "ParticleArrays":
        """A new population of the selected particles (copies)."""
        sel = mask_or_index
        return ParticleArrays(
            x=self.x[sel].copy(),
            y=self.y[sel].copy(),
            u=self.u[sel].copy(),
            v=self.v[sel].copy(),
            w=self.w[sel].copy(),
            rot=self.rot[sel].copy(),
            perm=self.perm[sel].copy(),
            cell=self.cell[sel].copy(),
            z=self.z[sel].copy(),
        )

    def reorder_inplace(self, order: np.ndarray) -> None:
        """Apply a sort order to every column (the post-sort layout)."""
        self.x = self.x[order]
        self.y = self.y[order]
        self.u = self.u[order]
        self.v = self.v[order]
        self.w = self.w[order]
        self.rot = self.rot[order]
        self.perm = self.perm[order]
        self.cell = self.cell[order]
        self.z = self.z[order]

    @staticmethod
    def concatenate(a: "ParticleArrays", b: "ParticleArrays") -> "ParticleArrays":
        """Concatenate two populations (e.g. flow + plunger refill)."""
        if a.rotational_dof != b.rotational_dof:
            raise ConfigurationError("rotational dof mismatch")
        return ParticleArrays(
            x=np.concatenate((a.x, b.x)),
            y=np.concatenate((a.y, b.y)),
            u=np.concatenate((a.u, b.u)),
            v=np.concatenate((a.v, b.v)),
            w=np.concatenate((a.w, b.w)),
            rot=np.concatenate((a.rot, b.rot)),
            perm=np.concatenate((a.perm, b.perm)),
            cell=np.concatenate((a.cell, b.cell)),
            z=np.concatenate((a.z, b.z)),
        )

    def copy(self) -> "ParticleArrays":
        """Deep copy of the population."""
        return self.select(slice(None))
