"""ABL3 -- the processor-mapping argument, quantified.

The paper's "Data Structure - Processor Mapping" section rejects the
cells-to-processors mapping on communication (8 serialized events in
2-D, 26 in 3-D, 1/8 of processors active) and load-balance grounds
(compute paced by the most crowded cell, memory sized for the densest).
This bench takes an actual converged wedge snapshot and computes those
numbers.
"""

import numpy as np

from repro.analysis.report import ExperimentRecord
from repro.cm.cellmapped import cell_mapped_motion_step
from repro.cm.mapping import compare_mappings, neighbour_exchange_events
from repro.core.cells import assign_cells, cell_populations

from benchmarks.common import DOMAIN


def test_abl_processor_mapping(benchmark, continuum_solution, emit):
    sim = continuum_solution
    parts = sim.particles
    assign_cells(parts, DOMAIN)
    pops = cell_populations(parts.cell, DOMAIN.n_cells)

    # Migration traffic the cell mapping would route: particles whose
    # cell changes across one motion step.
    before = parts.cell.copy()
    x_next = parts.x + parts.u
    y_next = parts.y + parts.v
    after = DOMAIN.cell_index(
        np.clip(x_next, 0, DOMAIN.width - 1e-9),
        np.clip(y_next, 0, DOMAIN.height - 1e-9),
    )
    migrated = before != after

    cmp2d = benchmark(compare_mappings, pops, migrated, 2)

    rec = ExperimentRecord("ABL3", "cells-to-processors vs particles mapping")
    rec.add("2-D neighbour exchange events", 8, cmp2d.cell_mapping_comm_events, rel_tol=0)
    rec.add("3-D neighbour exchange events", 26, neighbour_exchange_events(3), rel_tol=0)
    rec.add(
        "active fraction per exchange event",
        1 / 8,
        cmp2d.cell_mapping_comm_active_fraction,
        rel_tol=1e-9,
    )
    rec.add(
        "cell-mapping compute utilization",
        None,
        cmp2d.cell_mapping_compute_utilization,
        note="mean/max cell population on the converged shock field",
    )
    rec.add(
        "particle-mapping compute utilization",
        1.0,
        cmp2d.particle_mapping_compute_utilization,
        rel_tol=1e-9,
    )
    rec.add(
        "compute advantage of particle mapping",
        None,
        cmp2d.compute_advantage,
        note="paced-by-densest-cell penalty avoided",
    )
    rec.add(
        "per-step cell migration fraction",
        None,
        cmp2d.migration_fraction,
        note="traffic the cell mapping would have to route",
    )

    # Execute the cell mapping's motion step (NEWS exchange + SIMD
    # pacing) on the same snapshot for measured, not argued, numbers.
    report = cell_mapped_motion_step(parts, DOMAIN)
    rec.add(
        "cell-mapped / particle-mapped motion cost",
        None,
        report.cost_ratio,
        note="serialized 8-event exchange + fullest-cell pacing",
    )
    rec.add(
        "cell-mapped memory slots per processor",
        None,
        float(report.memory_slots_per_processor),
        note="provisioned for the densest (post-shock) cell",
    )
    rec.add(
        "mean exchange-event utilization",
        None,
        report.mean_event_utilization,
        note="fraction of the SIMD machine doing useful sends",
    )
    emit(rec)

    # With a 3.7x shock and near-vacuum wake, the imbalance is large.
    assert cmp2d.compute_advantage > 2.0
    assert report.cost_ratio > 1.5
