"""SHARDED -- steps/sec of the domain-sharded backend at 1/2/4 workers.

Runs the hot-path benchmark configuration through
:class:`repro.parallel.backend.ShardedBackend` at increasing worker
counts and records steps/sec, parallel speedup over the 1-worker run,
and the per-shard migration traffic.  The record carries ``host_cpus``
because the numbers are only meaningful relative to it: on a
single-core host the workers time-slice one CPU and the "speedup" is
pure overhead accounting (expect <= 1.0x); real speedup needs
``host_cpus >= workers``.

Standalone: ``PYTHONPATH=src python benchmarks/bench_sharded.py``
writes ``BENCH_sharded.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from bench_step_hotpath import default_config
from repro.core.simulation import Simulation
from repro.parallel.backend import ShardedBackend

WARMUP_STEPS = 3
TIMED_STEPS = 10
WORKER_COUNTS = (1, 2, 4)
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _timed_run(n_workers: int, steps: int) -> dict:
    config = default_config()
    backend = ShardedBackend(n_workers) if n_workers > 1 else None
    sim = Simulation(config, backend=backend)
    try:
        sim.run(WARMUP_STEPS)
        t0 = time.perf_counter()
        sim.run(steps)
        elapsed = time.perf_counter() - t0
        sim.gather()
        n = sim.particles.n
    finally:
        sim.close()
    return {
        "workers": n_workers,
        "steps_per_sec": steps / elapsed,
        "us_per_particle_step": elapsed / steps / n * 1e6,
        "n_particles": n,
    }


def run_benchmark(steps: int = TIMED_STEPS, workers=WORKER_COUNTS) -> dict:
    runs = [_timed_run(w, steps) for w in workers]
    base = runs[0]["steps_per_sec"]
    for r in runs:
        r["speedup_vs_1"] = r["steps_per_sec"] / base
    host_cpus = os.cpu_count() or 1
    return {
        "bench": "sharded",
        "host_cpus": host_cpus,
        "note": (
            "speedup_vs_1 is physical parallelism only when host_cpus "
            ">= workers; with fewer cores the worker processes "
            "time-slice and the figure measures sharding overhead"
        ),
        "timed_steps": steps,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--steps", type=int, default=TIMED_STEPS)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(WORKER_COUNTS)
    )
    args = parser.parse_args(argv)

    result = run_benchmark(steps=args.steps, workers=args.workers)
    out = REPO_ROOT / "BENCH_sharded.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"host cpus: {result['host_cpus']}")
    for r in result["runs"]:
        print(
            "{:d} worker(s): {:6.2f} steps/s  ({:.2f}x vs 1)".format(
                r["workers"], r["steps_per_sec"], r["speedup_vs_1"]
            )
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
