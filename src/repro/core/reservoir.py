"""The particle reservoir.

"Those particles exiting through the soft downstream boundary are
removed from the physical space of the simulation and put in a separate
reservoir.  These particles are given velocities from a rectangular
distribution with the same variance as the freestream, therefore after a
few time steps collisions with other reservoir particles relaxes these
to the correct Gaussian distributions.  When new particles need to be
introduced at the upstream boundary they are taken from this reservoir."

The reservoir earns its keep three ways (paper, "Particle Motion and
Boundary Interaction"):

* idle virtual processors do useful work (Gaussianizing future inflow)
  instead of wasting their SIMD time slice;
* no transcendental functions or repeated random draws are needed to
  sample a Maxwellian -- a single uniform draw per component suffices;
* the start-up transient's surplus particles have somewhere to live.

The emulation models the reservoir as a single well-mixed cell: each
step the population is randomly re-paired and every pair collides
(Maxwell-molecule collisions conserve the population's energy and
momentum, so the distribution relaxes to a drifting Maxwellian with the
freestream's mean and variance).
"""

from __future__ import annotations

import numpy as np

from repro.core.collision import collide_adjacent_pairs, collide_pairs
from repro.core.particles import ParticleArrays
from repro.errors import ConfigurationError
from repro.physics.distributions import sample_rectangular
from repro.physics.freestream import Freestream
from repro.rng import random_permutation_table


class Reservoir:
    """Holding tank for particles outside the physical space.

    Parameters
    ----------
    freestream:
        Target conditions: deposited particles are re-dealt rectangular
        velocities with the freestream variance around the freestream
        drift, and relax toward the matching Maxwellian.
    rotational_dof:
        Internal degrees of freedom of the molecule model.
    """

    def __init__(self, freestream: Freestream, rotational_dof: int = 2) -> None:
        self.freestream = freestream
        self.particles = ParticleArrays.empty(rotational_dof)

    # -- inspection --------------------------------------------------------

    @property
    def size(self) -> int:
        return self.particles.n

    @property
    def rotational_dof(self) -> int:
        return self.particles.rotational_dof

    # -- deposit / withdraw --------------------------------------------------

    def deposit(self, rng: np.random.Generator, n: int) -> None:
        """Add ``n`` particles with rectangular freestream-variance state.

        The incoming particles' actual post-shock velocities are
        discarded (the paper re-deals them; keeping hot wake velocities
        would bias the future inflow), so only the count matters.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if n == 0:
            return
        rdof = self.rotational_dof
        vel = sample_rectangular(
            rng, n, self.freestream.c_mp, drift=self.freestream.drift_vector()
        )
        rot = sample_rectangular(rng, n, self.freestream.c_mp, components=rdof)
        newcomers = ParticleArrays(
            x=np.zeros(n),
            y=np.zeros(n),
            u=vel[:, 0].copy(),
            v=vel[:, 1].copy(),
            w=vel[:, 2].copy(),
            rot=rot,
            perm=random_permutation_table(rng, n, length=3 + rdof),
            cell=np.zeros(n, dtype=np.int64),
        )
        if self.particles.scratch is not None:
            self.particles.append_inplace(newcomers)
        else:
            self.particles = ParticleArrays.concatenate(
                self.particles, newcomers
            )

    def withdraw(self, rng: np.random.Generator, n: int) -> ParticleArrays:
        """Remove and return ``n`` particles (velocities as relaxed).

        If the reservoir runs short, the balance is topped up with fresh
        rectangular-distribution particles first (they enter the flow
        less Gaussian than usual; the paper's sizing -- ~10% of the
        population idles in the reservoir -- makes this rare).

        The withdrawn subset is drawn uniformly without replacement
        (O(n), not a full-reservoir permutation) and the remainder is
        compacted in one pass.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if n > self.size:
            self.deposit(rng, n - self.size)
        take = rng.choice(self.size, size=n, replace=False, shuffle=False)
        out = self.particles.select(take)
        if self.particles.scratch is not None:
            gone = np.zeros(self.size, dtype=bool)
            gone[take] = True
            self.particles.remove_inplace(gone)
        else:
            keep = np.ones(self.size, dtype=bool)
            keep[take] = False
            self.particles = self.particles.select(keep)
        return out

    # -- relaxation -----------------------------------------------------------

    def mix(self, rng: np.random.Generator, rounds: int = 1) -> int:
        """Collide the reservoir against itself for ``rounds`` steps.

        Every round randomly re-pairs the population and collides every
        pair (the reservoir is one conceptual cell at freestream density
        where candidates always collide).  Returns collisions performed.
        """
        total = 0
        parts = self.particles
        for _ in range(rounds):
            n = self.size
            if n < 2:
                break
            if parts.scratch is not None:
                # Physically shuffle once (ping-pong reorder), then the
                # adjacent-pair kernel collides every (2i, 2i+1) block
                # with zero gathers -- same pairing distribution as
                # colliding (order[2i], order[2i+1]) in place.
                parts.reorder_inplace(
                    parts.scratch.permutation(n, rng),
                    columns=("u", "v", "w", "rot", "perm"),
                )
                stats = collide_adjacent_pairs(parts, rng=rng)
            else:
                order = rng.permutation(n)
                n_pairs = n // 2
                first = order[0 : 2 * n_pairs : 2]
                second = order[1 : 2 * n_pairs : 2]
                stats = collide_pairs(parts, first, second, rng=rng)
            total += stats.n_collisions
        return total
