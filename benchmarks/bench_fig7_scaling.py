"""FIG7 -- Figure 7: per-particle time vs problem size at fixed machine.

"The interesting feature of this plot is the decrease in the per
particle computational time with larger problems. ... The effect is most
pronounced in going from a virtual processor ratio of 1 to a ratio of 2
because collision pairings are even with odd, hence for virtual
processor ratios greater than one, communication in the collision
routine is maintained within the physical processor."

Two curves are produced:

* **model**: the calibrated structural cost model evaluated at the
  paper's machine (32k processors) and particle counts (32k..512k);
* **measured**: the CM emulation engine actually run on a scaled
  machine (so Python runtimes stay in seconds) across the same VP-ratio
  range 1..16, with communication volumes measured from the real send
  patterns.
"""

import numpy as np

from repro.analysis.report import ExperimentRecord
from repro.cm.machine import CM2
from repro.cm.timing import CM2TimingModel
from repro.constants import (
    PAPER_CM2_PROCESSORS,
    PAPER_CM2_US_PER_PARTICLE,
)
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import SimulationConfig
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream

from benchmarks.common import OUT_DIR

#: Scaled machine: 512 physical processors; particle counts sweep the
#: paper's VP-ratio range 1..16.
SCALED_PROCESSORS = 512
VP_RATIOS = (1, 2, 4, 8, 16)
STEPS = 6


def _measured_curve():
    machine = CM2(n_processors=SCALED_PROCESSORS)
    tm = CM2TimingModel(machine=machine)
    curve = {}
    for vpr in VP_RATIOS:
        n_target = SCALED_PROCESSORS * vpr
        # Size the domain so freestream density stays ~8/cell.
        ny = max(int(np.sqrt(n_target / 8.0 / 2.0)), 6)
        nx, ny = 2 * ny, ny
        density = n_target / (nx * ny)
        cfg = SimulationConfig(
            domain=Domain(nx, ny),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=density
            ),
            wedge=None,
            seed=7,
        )
        sim = CMSimulation(cfg, machine=machine)
        sim.run(STEPS)
        pb = sim.phase_breakdown(tm)
        curve[vpr] = pb
    return curve


def test_fig7_per_particle_time_vs_problem_size(benchmark, emit):
    # Model curve at the paper's machine.
    tm_paper = CM2TimingModel(machine=CM2(n_processors=PAPER_CM2_PROCESSORS))
    counts = [PAPER_CM2_PROCESSORS * v for v in VP_RATIOS]
    model = tm_paper.predict_curve(counts)
    model_totals = {v: model[PAPER_CM2_PROCESSORS * v].total for v in VP_RATIOS}

    # Measured curve on the emulated (scaled) machine; time one run of
    # the smallest configuration as the benchmark workload.
    measured = _measured_curve()
    measured_totals = {v: pb.total for v, pb in measured.items()}

    def one_step_workload():
        machine = CM2(n_processors=SCALED_PROCESSORS)
        cfg = SimulationConfig(
            domain=Domain(32, 16),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0
            ),
            wedge=None,
            seed=3,
        )
        sim = CMSimulation(cfg, machine=machine)
        sim.run(2)
        return sim.ledger.total()

    benchmark(one_step_workload)

    rec = ExperimentRecord("FIG7", "per-particle time vs total particles")
    rec.add(
        "model total at 512k (us)",
        PAPER_CM2_US_PER_PARTICLE,
        model_totals[16],
        rel_tol=0.01,
    )
    rec.add(
        "model total at 32k / VPR 1 (us)",
        10.5,
        model_totals[1],
        rel_tol=0.15,
        note="paper figure 7 tops out near 10.5 us",
    )
    rec.add(
        "measured total at VPR 16 (us)",
        PAPER_CM2_US_PER_PARTICLE,
        measured_totals[16],
        rel_tol=0.25,
        note=f"emulated {SCALED_PROCESSORS}-processor machine",
    )
    drops = [
        measured_totals[a] - measured_totals[b]
        for a, b in zip(VP_RATIOS, VP_RATIOS[1:])
    ]
    rec.add(
        "largest measured drop is VPR 1 -> 2",
        None,
        1.0 if drops[0] == max(drops) else 0.0,
        note="the paper's collision-communication effect",
    )
    for v in VP_RATIOS:
        rec.add(
            f"measured us/particle at VPR {v}",
            None,
            measured_totals[v],
            note=f"model: {model_totals[v]:.2f}",
        )
    emit(rec)

    OUT_DIR.mkdir(exist_ok=True)
    np.savez(
        OUT_DIR / "fig7_curve.npz",
        vp_ratios=np.array(VP_RATIOS, dtype=float),
        model=np.array([model_totals[v] for v in VP_RATIOS]),
        measured=np.array([measured_totals[v] for v in VP_RATIOS]),
    )

    # The shape assertions the paper's figure makes.
    m = [measured_totals[v] for v in VP_RATIOS]
    assert all(a > b for a, b in zip(m, m[1:])), "monotone decline"
    assert drops[0] == max(drops), "VPR 1 -> 2 drop most pronounced"
