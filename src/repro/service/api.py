"""The service HTTP API: stdlib ``http.server`` over the orchestrator.

Same no-dependency pattern as the telemetry
:class:`~repro.telemetry.exporters.MetricsServer`: a
``ThreadingHTTPServer`` bound to ``127.0.0.1`` (``port=0`` for an
ephemeral port in tests), handler threads calling into the
(lock-protected) orchestrator.  Routes:

==============================  =========================================
``POST /jobs``                  submit; 202 accepted, 200 cached,
                                429 backpressure, 400 bad config,
                                503 shutting down
``POST /sweep``                 expand a mach x kn x seed grid into
                                one submission per grid point through
                                the same path (202; 200 all cached)
``GET /jobs``                   list all jobs
``GET /jobs/<id>``              one job's status (404 unknown)
``POST /jobs/<id>/cancel``      cancel (409 already terminal)
``GET /jobs/<id>/result``       the DONE artifact (409 not done)
``GET /jobs/<id>/events``       long-poll the job's merged event tail
                                (``?cursor=`` resumes, ``?timeout=``
                                bounds the wait)
``GET /jobs/<id>/stream``       Server-Sent Events live stream
                                (``Last-Event-ID``/``?cursor=``
                                resumes; final ``state`` event at
                                terminal)
``GET /fleet``                  live fleet summary (per-job rows)
``GET /metrics``                Prometheus text exposition (includes
                                per-job labeled gauges while running)
``GET /healthz``                liveness + queue depth
==============================  =========================================

Every error response is JSON ``{"error": <type>, "detail": ...,
"context": {...}}`` so clients get the same typed taxonomy the Python
API raises (:class:`~repro.errors.BackpressureError` -> 429, etc.).

The two tail routes share one engine: a
:class:`~repro.telemetry.stream.JobEventTail` over the job directory's
``worker.jsonl`` + ``events.jsonl``.  The cursor is the tail's opaque
byte-offset pair, so a client that disconnects mid-stream resumes
exactly where it stopped -- no replay, no loss -- whether it long-polls
or reconnects the SSE stream with ``Last-Event-ID``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    JobNotFoundError,
    JobStateError,
    ReproError,
    ServiceError,
)
from repro.service.orchestrator import Orchestrator
from repro.telemetry.stream import JobEventTail

#: Long-poll wait bounds, seconds (``?timeout=`` is clamped into them).
LONGPOLL_DEFAULT = 10.0
LONGPOLL_MAX = 30.0
#: Cadence of tail polls while a watcher waits, seconds.
TAIL_INTERVAL = 0.1
#: Seconds of SSE silence before a ``: heartbeat`` comment is sent so
#: proxies and clients can tell an idle stream from a dead one.
SSE_HEARTBEAT = 5.0

#: Typed error -> HTTP status.  Order matters: subclasses first.
_STATUS = (
    (BackpressureError, 429),
    (JobNotFoundError, 404),
    (JobStateError, 409),
    (ConfigurationError, 400),
    (ServiceError, 503),
)


def _status_for(exc: ReproError) -> int:
    for cls, status in _STATUS:
        if isinstance(exc, cls):
            return status
    return 500


class ServiceAPI:
    """Background HTTP front end for an :class:`Orchestrator`."""

    def __init__(self, orchestrator: Orchestrator, port: int = 0) -> None:
        self.orchestrator = orchestrator
        api = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                api._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 (stdlib API)
                api._dispatch(self, "POST")

            def log_message(self, *args) -> None:
                """Silence per-request stderr logging."""

        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-api",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    # -- request handling ------------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str):
        try:
            out = self._route(handler, method)
            if out is None:
                return  # the route streamed its own response (SSE)
            status, body = out
        except ReproError as exc:
            status = _status_for(exc)
            body = {
                "error": type(exc).__name__,
                "detail": str(exc),
                "context": getattr(exc, "context", {}),
            }
        except Exception as exc:  # noqa: BLE001 - fail as a response
            status = 500
            body = {"error": type(exc).__name__, "detail": str(exc)}
        handler.send_response(status)
        if isinstance(body, dict) and "_raw" in body:
            ctype = body.get("_content_type", "text/plain; charset=utf-8")
            blob = body["_raw"].encode()
        else:
            ctype = "application/json"
            blob = json.dumps(body).encode()
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(blob)))
        handler.end_headers()
        handler.wfile.write(blob)

    def _route(self, handler, method: str):
        parts = urlsplit(handler.path)
        path = parts.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        orch = self.orchestrator
        if method == "GET":
            if path == "/healthz":
                health = orch.health()
                return (200 if health["ok"] else 503), health
            if path == "/metrics":
                return 200, {
                    "_content_type": (
                        "text/plain; version=0.0.4; charset=utf-8"
                    ),
                    "_raw": orch.registry.to_prometheus(),
                }
            if path == "/fleet":
                return 200, orch.fleet()
            if path == "/jobs":
                return 200, {"jobs": orch.list_jobs()}
            if path.startswith("/jobs/") and path.endswith("/result"):
                job_id = path[len("/jobs/"):-len("/result")]
                return 200, orch.result(job_id)
            if path.startswith("/jobs/") and path.endswith("/events"):
                job_id = path[len("/jobs/"):-len("/events")]
                return 200, self._longpoll(job_id, query)
            if path.startswith("/jobs/") and path.endswith("/stream"):
                job_id = path[len("/jobs/"):-len("/stream")]
                self._sse(handler, job_id, query)
                return None
            if path.startswith("/jobs/"):
                return 200, orch.status(path[len("/jobs/"):])
        elif method == "POST":
            if path == "/jobs":
                req = self._read_json(handler)
                out = orch.submit(
                    scenario=req.get("scenario"),
                    spec=req.get("spec"),
                    seed=req.get("seed"),
                    overrides=req.get("overrides"),
                    deadline=req.get("deadline"),
                    max_retries=req.get("max_retries"),
                    faults=req.get("faults"),
                )
                return (200 if out["cached"] else 202), out
            if path == "/sweep":
                return self._sweep(self._read_json(handler))
            if path.startswith("/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/jobs/"):-len("/cancel")]
                return 200, orch.cancel(job_id)
        raise JobNotFoundError("no such route", path=path, method=method)

    # -- parameter sweeps ------------------------------------------------

    #: Ceiling on one sweep's grid size -- a typo'd axis should fail
    #: fast, not enqueue thousands of jobs past the dedup cache.
    SWEEP_LIMIT = 64

    def _sweep(self, req: dict):
        """``POST /sweep``: expand a mach x kn x seed grid into jobs.

        Each grid point goes through the orchestrator's normal
        ``submit`` path -- dedup cache, queue backpressure and journal
        all apply per job; the sweep adds no orchestrator state.  An
        omitted axis contributes no override (the scenario default);
        ``kn`` values are freestream mean free paths in cell widths
        (the ``lambda_mfp`` override).  Jobs are submitted in grid
        order (mach outermost, seed innermost).  On backpressure
        mid-sweep the 429 response's context reports how many grid
        points had already been accepted (they stay queued).
        """
        scenario = req.get("scenario")
        spec = req.get("spec")
        if scenario is None and spec is None:
            raise ConfigurationError("sweep needs a scenario or spec")

        def _axis(name):
            values = req.get(name)
            if values is None:
                return [None]
            if not isinstance(values, list) or not values:
                raise ConfigurationError(
                    f"sweep axis {name!r} must be a non-empty list"
                )
            return values

        machs = _axis("mach")
        kns = _axis("kn")
        seeds = _axis("seeds")
        grid = [
            (m, kn, seed)
            for m in machs
            for kn in kns
            for seed in seeds
        ]
        if len(grid) > self.SWEEP_LIMIT:
            raise ConfigurationError(
                f"sweep grid has {len(grid)} points; limit is "
                f"{self.SWEEP_LIMIT} per request"
            )
        base = dict(req.get("overrides") or {})
        jobs = []
        for m, kn, seed in grid:
            overrides = dict(base)
            if m is not None:
                overrides["mach"] = m
            if kn is not None:
                overrides["lambda_mfp"] = kn
            try:
                out = self.orchestrator.submit(
                    scenario=scenario,
                    spec=spec,
                    seed=seed,
                    overrides=overrides,
                    deadline=req.get("deadline"),
                    max_retries=req.get("max_retries"),
                )
            except BackpressureError as exc:
                raise BackpressureError(
                    "sweep stopped by backpressure",
                    submitted=len(jobs),
                    total=len(grid),
                    **{str(k): v for k, v in exc.context.items()},
                ) from None
            jobs.append(
                {
                    "mach": m,
                    "kn": kn,
                    "seed": seed,
                    "job_id": out["job_id"],
                    "state": out["state"],
                    "cached": out["cached"],
                }
            )
        status = 200 if all(j["cached"] for j in jobs) else 202
        return status, {"jobs": jobs, "count": len(jobs)}

    # -- live tails ------------------------------------------------------

    def _tail(self, job_id: str, cursor) -> JobEventTail:
        """A merged event tail for a *known* job (404 otherwise)."""
        job = self.orchestrator.store.get(job_id)  # raises JobNotFound
        return JobEventTail(job.job_dir, cursor=cursor)

    def _longpoll(self, job_id: str, query: dict) -> dict:
        """``GET /jobs/<id>/events``: new records since ``?cursor=``.

        Blocks up to ``?timeout=`` seconds (clamped to
        ``LONGPOLL_MAX``) waiting for fresh records; returns
        immediately once any arrive or the job is terminal.  The
        response carries the next cursor, so a client loops
        ``cursor = resp["cursor"]`` for a complete, gapless feed.
        """
        try:
            timeout = float(query.get("timeout", LONGPOLL_DEFAULT))
        except ValueError:
            raise ConfigurationError(
                f"timeout must be a number, got {query.get('timeout')!r}"
            ) from None
        timeout = min(max(0.0, timeout), LONGPOLL_MAX)
        tail = self._tail(job_id, query.get("cursor"))
        deadline = time.monotonic() + timeout
        while True:
            status = self.orchestrator.status(job_id)
            events = tail.poll()
            if events or status["terminal"] or (
                time.monotonic() >= deadline
            ):
                return {
                    "job_id": job_id,
                    "events": events,
                    "cursor": tail.cursor,
                    "state": status["state"],
                    "terminal": status["terminal"],
                }
            time.sleep(TAIL_INTERVAL)

    def _sse(self, handler, job_id: str, query: dict) -> None:
        """``GET /jobs/<id>/stream``: Server-Sent Events until terminal.

        Every record becomes one SSE message whose ``id:`` is the tail
        cursor *after* that record, so a reconnecting client's
        ``Last-Event-ID`` header (or ``?cursor=``) resumes without a
        gap.  Idle periods carry ``: heartbeat`` comments; the stream
        ends with a final ``state`` event once the job is terminal and
        its tail is drained.
        """
        cursor = query.get("cursor") or handler.headers.get(
            "Last-Event-ID"
        )
        tail = self._tail(job_id, cursor)  # 404 before headers go out
        handler.send_response(200)
        handler.send_header("Content-Type", "text/event-stream")
        handler.send_header("Cache-Control", "no-cache")
        handler.send_header("X-Accel-Buffering", "no")
        handler.end_headers()
        wfile = handler.wfile
        try:
            last_write = time.monotonic()
            while True:
                status = self.orchestrator.status(job_id)
                for rec in tail.poll():
                    blob = json.dumps(rec, separators=(",", ":"))
                    wfile.write(
                        (
                            f"id: {rec.get('cursor', tail.cursor)}\n"
                            f"event: {rec.get('kind', 'event')}\n"
                            f"data: {blob}\n\n"
                        ).encode("utf-8")
                    )
                    last_write = time.monotonic()
                if status["terminal"]:
                    # One more drain already happened above; close with
                    # the terminal state so clients know not to retry.
                    final = json.dumps(
                        {
                            "job_id": job_id,
                            "state": status["state"],
                            "terminal": True,
                        },
                        separators=(",", ":"),
                    )
                    wfile.write(
                        (
                            f"id: {tail.cursor}\n"
                            "event: state\n"
                            f"data: {final}\n\n"
                        ).encode("utf-8")
                    )
                    wfile.flush()
                    return
                if time.monotonic() - last_write > SSE_HEARTBEAT:
                    wfile.write(b": heartbeat\n\n")
                    last_write = time.monotonic()
                wfile.flush()
                time.sleep(TAIL_INTERVAL)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The watcher went away; its cursor lets it resume.
            return

    @staticmethod
    def _read_json(handler) -> dict:
        length = int(handler.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = handler.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    def close(self) -> None:
        """Shut the HTTP server down and join its thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
