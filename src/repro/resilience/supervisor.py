"""Supervised execution: checkpoint, detect, recover, degrade.

:class:`SupervisedRun` wraps a :class:`repro.core.simulation.Simulation`
in a crash-recovery harness:

* **checkpoint** every N steps (snapshots v2, ``ckpt_<step>.npz`` in the
  run directory, pruned to a small keep-window),
* **detect** worker death (:class:`~repro.errors.WorkerCrashError`),
  barrier timeouts (:class:`~repro.errors.WorkerHangError`), migration
  overflows (:class:`~repro.errors.ExchangeOverflowError`) and audit
  failures (:class:`~repro.errors.InvariantViolationError`),
* **recover** by tearing the backend down, backing off exponentially,
  restoring the newest *loadable* checkpoint (corrupted archives fall
  back to older ones) and respawning the worker pool,
* **degrade** the sharded backend to the serial engine after repeated
  parallel faults (a run that keeps losing workers finishes slowly
  rather than not at all),
* **journal** every recovery event to ``journal.jsonl`` and merge it
  into the first post-recovery :class:`StepDiagnostics` so callers see
  what happened inline with the step stream.

Because the sharded backend draws its randomness from stateless
``(seed, shard, step)`` Philox streams, a recovery that restores a
checkpoint at the *same worker count* replays the failed steps
bit-for-bit: the supervised run's final state is identical to an
unfailed run's (tested).  Degraded (serial) recoveries continue the
run as a statistically equivalent realization instead.

A run directory is resumable across processes::

    run = SupervisedRun.resume("runs/wedge-1989")
    run.run_schedule()          # continues the stored schedule
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.simulation import Simulation, StepDiagnostics
from repro.errors import (
    CheckpointCorruptionError,
    ConfigurationError,
    ExchangeOverflowError,
    InvariantViolationError,
    RecoveryExhaustedError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.io.snapshots import load_simulation, save_simulation
from repro.resilience.audit import AuditConfig, InvariantAuditor
from repro.telemetry.events import EventStream

#: Failures the supervisor recovers from.  Everything else --
#: configuration errors, geometry errors, plain bugs -- propagates:
#: retrying cannot fix a wrong input.
RETRYABLE = (
    WorkerCrashError,
    WorkerHangError,
    ExchangeOverflowError,
    InvariantViolationError,
)

PathLike = Union[str, pathlib.Path]

#: Checkpoint file name pattern (zero-padded so lexical == numeric sort).
_CKPT_FMT = "ckpt_{step:08d}.npz"
_CKPT_GLOB = "ckpt_*.npz"


@dataclass(frozen=True)
class RecoveryEvent:
    """One detected failure and what the supervisor did about it."""

    #: Step index that failed (``sim.step_count`` had not advanced).
    step: int
    #: Exception class name (``WorkerCrashError``, ...).
    error: str
    #: The exception's message.
    detail: str
    #: 1-based retry number (compared against ``max_retries``).
    retry: int
    #: Step the run was rolled back to.
    restored_step: int
    #: Worker count after recovery (1 when degraded to serial).
    workers_after: int
    #: True when this recovery switched sharded -> serial.
    degraded: bool = False
    #: Seconds spent recovering (teardown + backoff + restore).
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        """Plain-dict form for the JSONL journal."""
        return dataclasses.asdict(self)


class RunJournal(EventStream):
    """Append-only event log of a supervised run (``journal.jsonl``).

    The original resilience journal, now a thin subclass of the
    telemetry :class:`~repro.telemetry.events.EventStream` -- same API
    (``append``/``load``), same one-JSON-object-per-line format, kept
    on its own ``journal.jsonl`` so existing run directories and
    tooling keep working.  When the supervised simulation also carries
    a telemetry hub, every journal record is mirrored into the hub's
    unified ``events.jsonl`` stream.
    """

    filename = "journal.jsonl"


class SupervisedRun:
    """Fault-tolerant driver of a simulation's step loop.

    Parameters
    ----------
    sim:
        The simulation to supervise (serial or sharded backend).
    run_dir:
        Directory for checkpoints, ``run.json`` metadata and the
        journal; created if missing.  A baseline checkpoint is written
        immediately so recovery is possible from step one.
    checkpoint_every, audit_every:
        Cadences in steps; ``0`` disables the respective machinery
        (an un-checkpointed fault is then fatal).
    max_retries:
        Recoveries allowed per run before
        :class:`~repro.errors.RecoveryExhaustedError`.
    backoff_base, backoff_factor, backoff_jitter:
        Exponential backoff before respawning: retry ``r`` sleeps
        ``backoff_base * backoff_factor**(r - 1)`` seconds, scaled by a
        uniform jitter factor in ``[1 - backoff_jitter, 1 + backoff_jitter]``
        so concurrent runs that fail together do not retry in lockstep
        (the service layer runs many supervised jobs at once).  Tests
        use ``backoff_base=0``, which always sleeps exactly zero
        regardless of jitter.
    degrade_after:
        Parallel faults tolerated before the run degrades sharded ->
        serial.  Degraded continuation is statistically equivalent, not
        bitwise (the per-shard streams are keyed by worker count).
    keep_checkpoints:
        Newest checkpoints retained; older ones are pruned.  Keep at
        least 2 so a torn newest write can fall back.
    compress_checkpoints:
        ``False`` (the default) writes plain .npz checkpoints -- ~30x
        faster than compressed at ~25% more disk, the right trade for
        files pruned within a few cadences.
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan` (testing).
        Re-armed on respawned backends; faults at or before a failed
        step are disarmed after recovery so the bitwise replay does not
        re-fire them.
    audit_config:
        Invariant selection/tolerances
        (:class:`repro.resilience.audit.AuditConfig`).
    """

    def __init__(
        self,
        sim: Simulation,
        run_dir: PathLike,
        checkpoint_every: int = 50,
        audit_every: int = 50,
        max_retries: int = 3,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        degrade_after: int = 2,
        keep_checkpoints: int = 3,
        compress_checkpoints: bool = False,
        fault_plan=None,
        audit_config: Optional[AuditConfig] = None,
        _meta: Optional[dict] = None,
    ) -> None:
        if checkpoint_every < 0 or audit_every < 0:
            raise ConfigurationError("cadences must be non-negative")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if keep_checkpoints < 1:
            raise ConfigurationError("keep_checkpoints must be >= 1")
        if not 0.0 <= float(backoff_jitter) <= 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1]")
        self.sim = sim
        self.run_dir = pathlib.Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.audit_every = int(audit_every)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_jitter = float(backoff_jitter)
        self.degrade_after = int(degrade_after)
        self.keep_checkpoints = int(keep_checkpoints)
        self.compress_checkpoints = bool(compress_checkpoints)
        self.fault_plan = fault_plan
        self.journal = RunJournal(self.run_dir)
        #: Optional :class:`repro.telemetry.hub.Telemetry` picked up from
        #: the simulation; every journal record is mirrored into its
        #: unified event stream, and audits report through it.
        self.telemetry = getattr(sim, "telemetry", None)
        self.auditor = InvariantAuditor(audit_config)
        self.retries = 0
        self.parallel_faults = 0
        #: Recovery events awaiting merge into the next StepDiagnostics.
        self._pending: list = []

        backend = sim.backend
        self._workers = int(getattr(backend, "n_workers", 1))
        self._processes = bool(getattr(backend, "_processes", False))
        self._barrier_timeout = getattr(backend, "_barrier_timeout", None)
        self._channel_capacity = getattr(backend, "_channel_capacity", None)
        self._rebalance = getattr(backend, "rebalance_config", None)

        if _meta is not None:
            self._meta = _meta
        else:
            self._meta = {
                "start_step": sim.step_count,
                "workers": self._workers,
                "processes": self._processes,
                "checkpoint_every": self.checkpoint_every,
                "audit_every": self.audit_every,
                "max_retries": self.max_retries,
                "seed": sim.config.seed
                if isinstance(sim.config.seed, int)
                else None,
            }
            self._write_meta()
            if self.checkpoint_every:
                self._checkpoint()
        self.auditor.rebase(sim)

    # -- context management --------------------------------------------

    def __enter__(self) -> "SupervisedRun":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the supervised simulation's backend."""
        self.sim.close()

    # -- telemetry ------------------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        """Adopt a telemetry hub after construction (the resume path).

        :meth:`resume` rebuilds the simulation from a checkpoint before
        any telemetry exists; this wires the hub to both the supervisor
        (journal mirroring, audit events) and the restored simulation.
        """
        self.telemetry = telemetry
        if telemetry is None:
            return
        telemetry.reattach(self.sim)
        # Mirror journal records this process appended before the hub
        # existed (resume() journals "resumed" -- and possibly
        # "checkpoint_corrupt" -- during construction).
        for record in self.journal.events:
            rec = dict(record)
            kind = rec.pop("kind", "resilience")
            telemetry.record_event(kind, **rec)

    def _journal(self, record: dict) -> None:
        """Append to ``journal.jsonl`` and mirror into the telemetry stream."""
        self.journal.append(record)
        if self.telemetry is not None:
            rec = dict(record)
            kind = rec.pop("kind", "resilience")
            self.telemetry.record_event(kind, **rec)

    # -- metadata / checkpoints ----------------------------------------

    def _write_meta(self) -> None:
        path = self.run_dir / "run.json"
        path.write_text(json.dumps(self._meta, indent=2), encoding="utf-8")

    def _checkpoints_newest_first(self) -> "list[pathlib.Path]":
        return sorted(self.run_dir.glob(_CKPT_GLOB), reverse=True)

    def _checkpoint(self) -> pathlib.Path:
        """Write ``ckpt_<step>.npz`` and prune beyond the keep-window."""
        path = self.run_dir / _CKPT_FMT.format(step=self.sim.step_count)
        save_simulation(
            self.sim,
            path,
            fault_plan=self.fault_plan,
            compress=self.compress_checkpoints,
        )
        for old in self._checkpoints_newest_first()[self.keep_checkpoints:]:
            old.unlink(missing_ok=True)
        if self.telemetry is not None:
            self.telemetry.record_event(
                "checkpoint", step=self.sim.step_count, path=path.name
            )
        return path

    # -- the supervised step -------------------------------------------

    def step(self, sample: bool = False) -> StepDiagnostics:
        """Advance one step, recovering from retryable faults.

        The step is retried (after restore) until it succeeds or the
        retry budget is exhausted; the returned diagnostics therefore
        always describe a *completed* step.  Recovery events that
        happened on the way are attached as ``diag.recovery``.
        """
        return self._step(lambda at: sample)

    def _step(self, sample_for) -> StepDiagnostics:
        """One supervised step; ``sample_for(step_index) -> bool``.

        The flag is a *function of the absolute step index*, re-evaluated
        on every attempt: a recovery rolls ``step_count`` back, and the
        replayed steps must carry the flags they originally had (a
        failed sampling step must not smear sampling onto the restored
        transient steps).
        """
        while True:
            try:
                sample = bool(sample_for(self.sim.step_count))
                diag = self.sim.step(sample=sample)
                self.auditor.observe(diag)
                if (
                    self.audit_every
                    and self.sim.step_count % self.audit_every == 0
                ):
                    self._audit()
            except RETRYABLE as exc:
                self._recover(exc)
                continue
            break
        if self._pending:
            diag = dataclasses.replace(diag, recovery=tuple(self._pending))
            self._pending = []
        if (
            self.checkpoint_every
            and self.sim.step_count % self.checkpoint_every == 0
        ):
            self._checkpoint()
        return diag

    def run_schedule(
        self,
        phases: Optional[Sequence] = None,
        max_steps: Optional[int] = None,
    ) -> Optional[StepDiagnostics]:
        """Run a transient/average schedule under supervision.

        ``phases`` is a sequence of ``(n_steps, sample)`` pairs (or
        ``{"steps": n, "sample": bool}`` dicts); it is recorded in
        ``run.json`` so :meth:`resume` can continue the same schedule
        with ``phases=None``.  The sampling flag of every step is
        derived from its *absolute* step index, so a recovery that
        rolls back across a phase boundary replays each step with the
        flag it originally had.

        ``max_steps`` stops early after that many completed steps
        (checkpointing the stop point) -- the hook resumption tests and
        incremental drivers use.
        """
        if phases is None:
            stored = self._meta.get("phases")
            if not stored:
                raise ConfigurationError(
                    "no schedule stored in run.json; pass phases explicitly"
                )
            phases = stored
            start = int(self._meta["schedule_start"])
        else:
            phases = [
                p
                if isinstance(p, dict)
                else {"steps": int(p[0]), "sample": bool(p[1])}
                for p in phases
            ]
            start = self.sim.step_count
            self._meta["phases"] = phases
            self._meta["schedule_start"] = start
            self._write_meta()

        segments = []
        lo = start
        for p in phases:
            hi = lo + int(p["steps"])
            segments.append((lo, hi, bool(p["sample"])))
            lo = hi
        total_end = lo

        def sample_for(at: int) -> bool:
            return any(s <= at < e and f for s, e, f in segments)

        diag = None
        done = 0
        while self.sim.step_count < total_end:
            diag = self._step(sample_for)
            done += 1
            if max_steps is not None and done >= max_steps:
                break
        if self.checkpoint_every:
            # Always leave a checkpoint at the stop point, so a resumed
            # process starts exactly here.  When the stop lands on the
            # cadence, _step already wrote this exact file -- skipping
            # the duplicate save keeps chunked drivers (the service
            # worker runs one heartbeat-sized call per chunk) from
            # paying for every checkpoint twice.
            path = self.run_dir / _CKPT_FMT.format(step=self.sim.step_count)
            if (
                self.sim.step_count % self.checkpoint_every != 0
                or not path.exists()
            ):
                self._checkpoint()
        return diag

    def _audit(self) -> None:
        """Run the invariant audit, reporting its outcome to telemetry.

        A failed audit still raises (the supervisor recovers from it);
        telemetry records the failure before the exception propagates so
        the event stream shows the audit verdict next to the recovery
        it triggered.
        """
        step = self.sim.step_count
        try:
            report = self.auditor.audit(self.sim)
        except InvariantViolationError as exc:
            if self.telemetry is not None:
                self.telemetry.record_audit(
                    step, ok=False, error=str(exc)
                )
            raise
        if self.telemetry is not None:
            self.telemetry.record_audit(step, ok=True, **(report or {}))

    # -- recovery -------------------------------------------------------

    def _backoff_seconds(self, retry: int) -> float:
        """Jittered exponential backoff for 1-based retry ``retry``.

        The jitter draws from the process RNG (``random``), never from
        the simulation's stream -- recovery timing must not perturb the
        physics.  ``backoff_base=0`` (the test path) returns exactly
        0.0 whatever the jitter setting.
        """
        backoff = self.backoff_base * self.backoff_factor ** (retry - 1)
        if backoff > 0 and self.backoff_jitter:
            backoff *= 1.0 + self.backoff_jitter * (2.0 * random.random() - 1.0)
        return backoff

    def _recover(self, exc: Exception) -> None:
        """Roll back to the newest loadable checkpoint and respawn."""
        t0 = time.monotonic()
        failed_step = self.sim.step_count
        self.retries += 1
        if self._workers > 1:
            self.parallel_faults += 1
        if self.retries > self.max_retries:
            self._journal(
                {
                    "kind": "exhausted",
                    "step": failed_step,
                    "error": type(exc).__name__,
                    "retries": self.retries - 1,
                }
            )
            raise RecoveryExhaustedError(
                "recovery budget exhausted",
                step=failed_step,
                retries=self.max_retries,
                last_error=type(exc).__name__,
            ) from exc
        if not self.checkpoint_every:
            raise RecoveryExhaustedError(
                "checkpointing is disabled; cannot recover",
                step=failed_step,
                last_error=type(exc).__name__,
            ) from exc

        # The fault (if injected) fired at or before the failed step;
        # disarm it on this side so the bitwise replay does not re-fire
        # it through a freshly forked pool.
        if self.fault_plan is not None:
            self.fault_plan.disarm_through(failed_step)

        try:
            self.sim.close()
        except Exception:  # pragma: no cover - teardown is best-effort
            pass

        backoff = self._backoff_seconds(self.retries)
        if backoff > 0:
            time.sleep(backoff)

        degraded = (
            self._workers > 1 and self.parallel_faults >= self.degrade_after
        )
        workers_after = 1 if degraded else self._workers
        self.sim = self._restore(workers_after)
        self._workers = workers_after
        self.auditor.rebase(self.sim)
        if self.telemetry is not None:
            # The restored simulation was built without a telemetry
            # handle; re-wire the hub so metrics and events continue
            # across the recovery (worker span rings are not
            # re-allocated on the respawned pool -- documented
            # limitation; driver-side spans resume immediately).
            self.telemetry.reattach(self.sim)

        event = RecoveryEvent(
            step=failed_step,
            error=type(exc).__name__,
            detail=str(exc),
            retry=self.retries,
            restored_step=self.sim.step_count,
            workers_after=workers_after,
            degraded=degraded,
            wall_seconds=time.monotonic() - t0,
        )
        self._pending.append(event)
        self._journal({"kind": "recovery", **event.to_dict()})
        if degraded:
            self._journal(
                {
                    "kind": "degraded",
                    "step": failed_step,
                    "parallel_faults": self.parallel_faults,
                }
            )

    def _backend_factory(self, n_workers, processes, flux_pending, edges=None):
        """Respawn a sharded backend with the run's knobs re-applied."""
        from repro.parallel.backend import ShardedBackend

        kwargs = {
            "processes": processes,
            "flux_pending": flux_pending,
            "fault_plan": self.fault_plan,
            "rebalance": self._rebalance,
            "edges": edges,
        }
        if self._barrier_timeout is not None:
            kwargs["barrier_timeout"] = self._barrier_timeout
        if self._channel_capacity is not None:
            kwargs["channel_capacity"] = self._channel_capacity
        return ShardedBackend(n_workers, **kwargs)

    def _restore(self, workers: int) -> Simulation:
        """Load the newest checkpoint that parses; fall back on torn ones."""
        last_exc: Optional[Exception] = None
        for path in self._checkpoints_newest_first():
            try:
                return load_simulation(
                    path,
                    workers=workers,
                    processes=self._processes,
                    backend_factory=self._backend_factory
                    if workers > 1
                    else None,
                )
            except CheckpointCorruptionError as corrupt:
                last_exc = corrupt
                self._journal(
                    {
                        "kind": "checkpoint_corrupt",
                        "path": path.name,
                        "detail": str(corrupt),
                    }
                )
                continue
        raise RecoveryExhaustedError(
            "no loadable checkpoint remains in the run directory",
            run_dir=str(self.run_dir),
        ) from last_exc

    # -- resumption -----------------------------------------------------

    @classmethod
    def resume(
        cls,
        run_dir: PathLike,
        workers: Optional[int] = None,
        processes: Optional[bool] = None,
        **overrides,
    ) -> "SupervisedRun":
        """Reattach to a run directory after a process death.

        Restores the newest loadable checkpoint (skipping torn ones)
        and rebuilds the supervisor from the stored ``run.json``
        metadata; ``run_schedule()`` with no arguments then finishes
        the stored schedule.  ``workers``/``processes`` override the
        snapshot's backend (``None`` keeps it); keyword ``overrides``
        replace any constructor knob.
        """
        run_dir = pathlib.Path(run_dir)
        meta_path = run_dir / "run.json"
        if not meta_path.exists():
            raise ConfigurationError(f"no run.json in {run_dir}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if processes is None:
            processes = bool(meta.get("processes", True))

        last_exc: Optional[Exception] = None
        sim = None
        journal = RunJournal(run_dir)
        for path in sorted(run_dir.glob(_CKPT_GLOB), reverse=True):
            try:
                sim = load_simulation(path, workers=workers, processes=processes)
                break
            except CheckpointCorruptionError as corrupt:
                last_exc = corrupt
                journal.append(
                    {
                        "kind": "checkpoint_corrupt",
                        "path": path.name,
                        "detail": str(corrupt),
                    }
                )
        if sim is None:
            raise CheckpointCorruptionError(
                "no loadable checkpoint in run directory",
                path=str(run_dir),
            ) from last_exc

        kwargs = {
            "checkpoint_every": int(meta.get("checkpoint_every", 50)),
            "audit_every": int(meta.get("audit_every", 50)),
            "max_retries": int(meta.get("max_retries", 3)),
        }
        kwargs.update(overrides)
        run = cls(sim, run_dir, _meta=meta, **kwargs)
        run._journal({"kind": "resumed", "step": sim.step_count})
        return run
