"""Sort primitive with CM cost accounting.

"It should be noted that sorts are very efficiently implemented on the
Connection Machine and do not incur the large computational cost usually
associated with sorts on sequential machines."  The paper's algorithm
sorts the particles by (randomized) cell key every time step; the sort
is 27% of the run time and its communication efficiency at high VP
ratios is one of the two effects visible in Figure 7.

The emulation computes the sorted order with NumPy's stable argsort
(same result as the machine's rank-based radix sort) and charges:

* the ranking passes (radix splits: two scans plus bookkeeping per key
  bit), and
* the data permutation, whose on-chip/off-chip split is **measured from
  the actual permutation** against the VP block layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.cm.field import Field
from repro.cm.machine import VPGeometry
from repro.cm.timing import CostModel
from repro.errors import MachineError

ArrayOrField = Union[np.ndarray, Field]


def _unwrap(x: ArrayOrField) -> np.ndarray:
    return x.data if isinstance(x, Field) else np.asarray(x)


@dataclass(frozen=True)
class SortResult:
    """Outcome of a key sort.

    Attributes
    ----------
    order:
        ``order[r]`` is the pre-sort VP index of the particle now at
        sorted rank ``r`` (i.e. ``sorted_key = key[order]``).
    rank:
        Inverse permutation: ``rank[i]`` is the sorted rank of the
        particle that was at VP ``i``.
    offchip_fraction:
        Measured fraction of particles whose move crossed a physical
        processor boundary (the paper's "general communication").
    """

    order: np.ndarray
    rank: np.ndarray
    offchip_fraction: float

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Reorder a per-particle column into sorted order."""
        return values[self.order]


def sort_by_key(
    keys: ArrayOrField,
    geometry: Optional[VPGeometry] = None,
    cost: Optional[CostModel] = None,
    key_bits: int = 16,
    payload_bits: int = 9 * 32,
) -> SortResult:
    """Stable sort of the VP set by integer key.

    Parameters
    ----------
    keys:
        Per-VP integer sort keys (the scaled, randomized cell index).
    geometry:
        VP geometry (taken from ``keys`` if it is a field).
    cost:
        Optional cost model; charges ranking + permutation.
    key_bits:
        Width of the radix ranking passes.  Must cover ``max(keys)``.
    payload_bits:
        Total width of the per-particle state moved by the permutation
        (the paper's computational state: 7 state words, cell index and
        the packed permutation vector => 9 words by default).
    """
    k = _unwrap(keys)
    if isinstance(keys, Field):
        geometry = geometry or keys.geometry
        cost = cost or keys.cost
    if k.ndim != 1:
        raise MachineError("sort keys must be 1-D (one key per VP)")
    if k.size and k.min() < 0:
        raise MachineError("sort keys must be non-negative")
    if k.size and key_bits < int(k.max()).bit_length():
        raise MachineError(
            f"key_bits={key_bits} too narrow for max key {int(k.max())}"
        )

    # Host-side fast path: a <= 16-bit key takes NumPy's radix/counting
    # sort (the same histogram + scan structure as the machine's
    # rank-based radix sort).  Stability makes the order bit-identical
    # to the wide sort, so results and cost charges are unchanged.
    if k.size and int(k.max()) <= np.iinfo(np.uint16).max:
        order = np.argsort(k.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(k, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)

    f_off = 0.0
    if cost is not None:
        cost.sort_rank(key_bits=key_bits)
        f_off = cost.route(
            np.arange(order.size), rank, payload_bits=payload_bits
        )
    elif geometry is not None and order.size:
        f_off = geometry.offchip_fraction(np.arange(order.size), rank)
    return SortResult(order=order, rank=rank, offchip_fraction=f_off)


def apply_order(order: np.ndarray, *columns: np.ndarray) -> tuple:
    """Reorder several per-particle columns by a sort order at once."""
    return tuple(c[order] for c in columns)
