"""Shared fixtures: small, fast configurations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import SimulationConfig
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_domain():
    return Domain(nx=30, ny=20)


@pytest.fixture
def small_wedge():
    return Wedge(x_leading=8.0, base=10.0, angle_deg=30.0)


@pytest.fixture
def rarefied_freestream():
    """Mach 4, finite mean free path, modest density."""
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=10.0)


@pytest.fixture
def continuum_freestream():
    """The paper's near-continuum validation limit (lambda = 0)."""
    return Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.0, density=10.0)


@pytest.fixture
def small_config(small_domain, small_wedge, rarefied_freestream):
    return SimulationConfig(
        domain=small_domain,
        freestream=rarefied_freestream,
        wedge=small_wedge,
        seed=77,
    )


@pytest.fixture
def box_config(small_domain, rarefied_freestream):
    """No wedge: an empty tunnel (for conservation-ish checks)."""
    return SimulationConfig(
        domain=small_domain,
        freestream=rarefied_freestream,
        wedge=None,
        seed=77,
    )
