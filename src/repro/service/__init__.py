"""Simulation-as-a-service: crash-safe job orchestration.

The service layer turns the one-shot CLI into a supervised fleet:
jobs are submitted as scenario specs, executed by worker processes
running :class:`~repro.resilience.supervisor.SupervisedRun`, and
tracked through a strict state machine persisted in an append-only
journal.  See ``docs/service.md`` for the API reference, the state
machine, and the failure-mode table.
"""

from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient
from repro.service.orchestrator import (
    FLEET_GAUGES,
    Orchestrator,
    OrchestratorConfig,
    cache_key,
)
from repro.service.watch import watch_fleet, watch_job
from repro.service.store import (
    CANCELLED,
    DONE,
    FAILED,
    JOURNAL_VERSION,
    QUEUED,
    RETRYING,
    RUNNING,
    TERMINAL_STATES,
    TIMED_OUT,
    VALID_TRANSITIONS,
    JobRecord,
    JobStore,
    ServiceJournal,
    load_journal_tolerant,
    replay,
    summarize_journal,
)
from repro.service.worker import (
    EXIT_DONE,
    EXIT_DRAINED,
    EXIT_FAILED,
    EXIT_KILLED,
)

__all__ = [
    "Orchestrator",
    "OrchestratorConfig",
    "ServiceAPI",
    "ServiceClient",
    "cache_key",
    "FLEET_GAUGES",
    "watch_job",
    "watch_fleet",
    "JobRecord",
    "JobStore",
    "ServiceJournal",
    "load_journal_tolerant",
    "replay",
    "summarize_journal",
    "JOURNAL_VERSION",
    "QUEUED",
    "RUNNING",
    "RETRYING",
    "DONE",
    "FAILED",
    "TIMED_OUT",
    "CANCELLED",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "EXIT_DONE",
    "EXIT_DRAINED",
    "EXIT_FAILED",
    "EXIT_KILLED",
]
