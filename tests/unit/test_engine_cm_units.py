"""Unit-level tests of the CM engine internals and config guards."""

import math
import warnings

import numpy as np
import pytest

from repro.cm.machine import CM2
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import Simulation, SimulationConfig
from repro.errors import ConfigurationError
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream


@pytest.fixture
def small_cm():
    cfg = SimulationConfig(
        domain=Domain(20, 13),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=6.0),
        wedge=None,
        seed=2,
    )
    return CMSimulation(cfg, machine=CM2(n_processors=64))


class TestEncodeDecode:
    def test_roundtrip_is_lossless_on_grid(self, small_cm):
        p0 = small_cm.particles
        st = small_cm._encode(p0)
        p1 = small_cm._decode(st)
        assert np.array_equal(p0.x, p1.x)
        assert np.array_equal(p0.u, p1.u)
        assert np.array_equal(p0.rot, p1.rot)

    def test_cell_index_from_words_matches_float(self, small_cm):
        small_cm.run(3)
        st = small_cm.state
        ix = np.clip(st.xq >> 23, 0, 19)
        iy = np.clip(st.yq >> 23, 0, 12)
        expected = Domain(20, 13).cell_index(
            small_cm.particles.x, small_cm.particles.y
        )
        assert np.array_equal(
            ix.astype(np.int64) * 13 + iy.astype(np.int64), expected
        )


class TestQuickDirtyStream:
    def test_bits_balanced(self, small_cm):
        small_cm.run(4)
        bits = small_cm._qd_bits(small_cm.state.xq, 1, salt=99)
        assert 0.35 < bits.mean() < 0.65

    def test_salt_decorrelates(self, small_cm):
        small_cm.run(2)
        a = small_cm._qd_bits(small_cm.state.xq, 8, salt=1)
        b = small_cm._qd_bits(small_cm.state.xq, 8, salt=2)
        assert not np.array_equal(a, b)

    def test_step_counter_decorrelates(self, small_cm):
        a = small_cm._qd_bits(small_cm.state.xq, 8, salt=1)
        small_cm.run(1)
        b = small_cm._qd_bits(small_cm.state.xq, 8, salt=1)
        assert not np.array_equal(a[: b.size], b[: a.size])


class TestVPPolicy:
    def test_dynamic_geometry_tracks_population(self, small_cm):
        g = small_cm._geometry(100)
        assert g.n_virtual == 100

    def test_static_geometry_holds_capacity(self):
        cfg = SimulationConfig(
            domain=Domain(20, 13),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=6.0
            ),
            wedge=None,
            seed=2,
        )
        sim = CMSimulation(
            cfg, machine=CM2(n_processors=64), dynamic_vp=False,
            vp_capacity=5000,
        )
        assert sim._geometry(100).n_virtual == 5000
        assert sim._geometry(6000).n_virtual == 6000  # grows if exceeded

    def test_static_costs_more_per_step(self):
        cfg = SimulationConfig(
            domain=Domain(20, 13),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=6.0
            ),
            wedge=None,
            seed=2,
        )
        m = CM2(n_processors=64)
        dyn = CMSimulation(cfg, machine=m, dynamic_vp=True)
        sta = CMSimulation(cfg, machine=m, dynamic_vp=False,
                           vp_capacity=3 * dyn.state.n)
        dyn.run(3)
        sta.run(3)
        assert sta.ledger.total() > dyn.ledger.total()

    def test_capacity_validated(self):
        cfg = SimulationConfig(
            domain=Domain(20, 13),
            freestream=Freestream(
                mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=6.0
            ),
            wedge=None,
            seed=2,
        )
        with pytest.raises(ConfigurationError):
            CMSimulation(
                cfg, machine=CM2(n_processors=64), vp_capacity=0,
                dynamic_vp=False,
            )


class TestDetachmentWarning:
    def test_attached_case_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SimulationConfig(
                domain=Domain(30, 20),
                freestream=Freestream(
                    mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0
                ),
                wedge=Wedge(x_leading=8, base=10, angle_deg=30),
            )

    def test_detached_case_warns(self):
        # Mach 2 cannot hold an attached 30-degree shock (limit ~2.52).
        with pytest.warns(UserWarning, match="detached"):
            SimulationConfig(
                domain=Domain(30, 20),
                freestream=Freestream(
                    mach=2.0, c_mp=0.14, lambda_mfp=0.5, density=8.0
                ),
                wedge=Wedge(x_leading=8, base=10, angle_deg=30),
            )

    def test_attachment_mach_values(self):
        # Textbook-ish anchors for gamma = 1.4.
        m30 = theory.minimum_attachment_mach(math.radians(30.0))
        assert m30 == pytest.approx(2.52, abs=0.05)
        m20 = theory.minimum_attachment_mach(math.radians(20.0))
        assert 1.8 < m20 < m30
        assert theory.minimum_attachment_mach(0.0) == 1.0

    def test_impossible_deflection_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.minimum_attachment_mach(math.radians(80.0))
