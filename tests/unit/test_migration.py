"""Unit tests of the shard-migration pack/unpack path.

The migration buffers carry a particle's full physical + computational
state between shards as raw block copies (no pickling).  These tests
pin the bitwise contract: what one worker packs, the neighbour unpacks
*identically*, including values that sit exactly on Q8.23 lattice
points (the paper's fixed-point grid), where any rounding in transit
would be visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.particles import (
    MIGRATION_FLOAT_COLUMNS,
    ParticleArrays,
    migration_float_width,
)
from repro.errors import ConfigurationError
from repro.fixedpoint.qformat import Q8_23
from repro.parallel.exchange import LEFT, RIGHT, MigrationChannels


def _heap_alloc(shape, dtype):
    return np.zeros(shape, dtype=dtype)


def _population(rng: np.random.Generator, n: int, dof: int = 2) -> ParticleArrays:
    """A population whose floats sit exactly on the Q8.23 lattice."""
    k = 3 + dof

    def q(lo, hi, size):
        # Quantize to Q8.23 so the values are exactly representable in
        # both the fixed-point words and (a fortiori) in float64; a
        # bitwise round-trip check on these is meaningful, not vacuous.
        return Q8_23.decode(Q8_23.encode(rng.uniform(lo, hi, size=size)))

    perm = np.empty((n, k), dtype=np.int8)
    for i in range(n):
        perm[i] = rng.permutation(k).astype(np.int8)
    parts = ParticleArrays(
        x=q(0.0, 30.0, n),
        y=q(0.0, 20.0, n),
        u=q(-2.0, 2.0, n),
        v=q(-2.0, 2.0, n),
        w=q(-2.0, 2.0, n),
        rot=q(-2.0, 2.0, (n, dof)),
        perm=perm,
        cell=rng.integers(0, 600, size=n).astype(np.int64),
        z=q(0.0, 1.0, n),
    )
    parts.enable_scratch()
    return parts


class TestPackAppendRoundTrip:
    def test_bitwise_round_trip(self, rng):
        dof = 2
        src = _population(rng, 200, dof)
        idx = np.flatnonzero(rng.random(src.n) < 0.3)
        width = migration_float_width(dof)
        fb = np.zeros((src.n, width))
        pb = np.zeros((src.n, 3 + dof), dtype=np.int8)

        # Capture the expected rows before any mutation.
        expect = {c: getattr(src, c)[idx].copy() for c in MIGRATION_FLOAT_COLUMNS}
        expect["rot"] = src.rot[idx].copy()
        expect["perm"] = src.perm[idx].copy()

        m = src.pack_rows(idx, fb, pb)
        assert m == idx.size

        dst = _population(rng, 50, dof)
        n0 = dst.n
        dst.append_rows(fb, pb, m)
        assert dst.n == n0 + m

        for c in MIGRATION_FLOAT_COLUMNS:
            got = getattr(dst, c)[n0:]
            assert np.array_equal(got, expect[c]), f"column {c} not bitwise"
        assert np.array_equal(dst.rot[n0:], expect["rot"])
        assert np.array_equal(dst.perm[n0:], expect["perm"])

    def test_empty_pack(self, rng):
        src = _population(rng, 10)
        fb = np.zeros((10, migration_float_width(2)))
        pb = np.zeros((10, 5), dtype=np.int8)
        assert src.pack_rows(np.empty(0, dtype=np.intp), fb, pb) == 0
        dst = _population(rng, 7)
        dst.append_rows(fb, pb, 0)
        assert dst.n == 7

    def test_pack_overflow_raises(self, rng):
        src = _population(rng, 20)
        fb = np.zeros((4, migration_float_width(2)))
        pb = np.zeros((4, 5), dtype=np.int8)
        with pytest.raises(ConfigurationError, match="overflow"):
            src.pack_rows(np.arange(10), fb, pb)

    def test_pack_rejects_wrong_width(self, rng):
        src = _population(rng, 20)
        fb = np.zeros((20, migration_float_width(2) + 1))
        pb = np.zeros((20, 5), dtype=np.int8)
        with pytest.raises(ConfigurationError):
            src.pack_rows(np.arange(5), fb, pb)


class TestMigrationChannels:
    def test_adjacency_wiring(self):
        ch = MigrationChannels(3, rotational_dof=2, capacity=16, alloc=_heap_alloc)
        assert ch.dest(0, LEFT) is None
        assert ch.dest(0, RIGHT) == 1
        assert ch.dest(2, RIGHT) is None
        assert ch.dest(1, LEFT) == 0
        with pytest.raises(ConfigurationError):
            ch.buffers(0, LEFT)

    def test_ship_receive_preserves_state_and_order(self, rng):
        ch = MigrationChannels(3, rotational_dof=2, capacity=64, alloc=_heap_alloc)
        left_src = _population(rng, 40)
        right_src = _population(rng, 40)
        li = np.arange(5)
        ri = np.arange(7)
        expect_x = np.concatenate([left_src.x[li], right_src.x[ri]])

        assert ch.ship(left_src, li, 0, RIGHT) == 5
        assert ch.ship(right_src, ri, 2, LEFT) == 7

        dst = _population(rng, 12)
        n0 = dst.n
        assert ch.receive(dst, 1) == 12
        # Fixed arrival order: left neighbour's shipment first.
        assert np.array_equal(dst.x[n0:], expect_x)

    def test_counts_overwritten_each_step(self, rng):
        ch = MigrationChannels(2, rotational_dof=2, capacity=8, alloc=_heap_alloc)
        src = _population(rng, 20)
        ch.ship(src, np.arange(6), 0, RIGHT)
        ch.ship(src, np.empty(0, dtype=np.intp), 0, RIGHT)
        dst = _population(rng, 3)
        assert ch.receive(dst, 1) == 0
        assert dst.n == 3
