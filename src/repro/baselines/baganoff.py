"""The paper's own scheme wrapped for the heat-bath comparison.

This is just the core pipeline (randomized sort -> even/odd pairing ->
selection rule -> permutation collision) exposed through the common
:class:`~repro.baselines.common.CollisionScheme` interface so the
ablation bench runs all three schemes on identical workloads.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import sort_population_by_cell
from repro.core.cells import cell_populations
from repro.core.collision import collide_pairs
from repro.core.pairing import even_odd_pairs
from repro.core.particles import ParticleArrays
from repro.core.selection import select_collisions
from repro.physics.freestream import Freestream
from repro.physics.molecules import MolecularModel, maxwell_molecule


class BaganoffSelection:
    """McDonald-Baganoff pairwise selection (the paper's algorithm)."""

    name = "mcdonald-baganoff"

    def __init__(
        self, freestream: Freestream, model: MolecularModel = None
    ) -> None:
        self.freestream = freestream
        self.model = model or maxwell_molecule()

    def collide_step(
        self, particles: ParticleArrays, n_cells: int, rng: np.random.Generator
    ) -> int:
        """One randomized-sort / pair / select / collide round."""
        sort_population_by_cell(particles, rng)
        pairs = even_odd_pairs(particles.cell)
        counts = cell_populations(particles.cell, n_cells)
        sel = select_collisions(
            particles, pairs, self.freestream, self.model, counts, rng=rng
        )
        first = pairs.first[sel.accept]
        second = pairs.second[sel.accept]
        stats = collide_pairs(particles, first, second, rng=rng)
        return stats.n_collisions
