"""Molecular interaction models.

The paper simulates "ideal diatomic Maxwell molecules with three
translational and two rotational degrees of freedom".  Maxwell molecules
interact through an inverse-power-law potential with exponent
``alpha = 4``, for which the collision cross-section scales as
``g**(-4/alpha) = 1/g`` and the per-pair collision probability of the
McDonald-Baganoff selection rule (eq. (7))

    P_c / P_cinf = (n / n_inf) * (g / g_inf)**(1 - 4/alpha)

loses its relative-speed dependence entirely (eq. (8)) -- the property
that makes the fine-grained CM implementation particularly clean.

The paper's Future Work asks for generalized power-law interactions;
this module supports any ``alpha > 2`` (hard spheres are the
``alpha -> inf`` limit with exponent 1) plus a configurable number of
rotational degrees of freedom (0 for a monatomic gas, 2 for the paper's
diatomic; a crude vibration hook adds more).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    MAXWELL_ALPHA,
    ROTATIONAL_DOF,
    TRANSLATIONAL_DOF,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MolecularModel:
    """An inverse-power-law molecule with internal degrees of freedom.

    Parameters
    ----------
    alpha:
        Inverse-power-law exponent (intermolecular force ~ r**-alpha).
        ``alpha = 4`` is a Maxwell molecule; ``alpha = math.inf`` is a
        hard sphere.  Must exceed 2 for a finite effective cross-section
        exponent.
    rotational_dof:
        Number of (fully excited, classical) internal degrees of
        freedom.  2 for the paper's diatomic model.  The collision
        algorithm's relative vector has ``3 + rotational_dof``
        components.
    mass:
        Molecular mass in simulation units (single-species: 1.0).
    internal_exchange_probability:
        Probability that a collision exchanges energy with the internal
        (rotational/vibrational) modes.  1.0 (default) reproduces the
        paper's model, where every collision mixes all five components;
        smaller values implement the Future Work "relaxation into
        vibrational energy": the internal modes equilibrate once per
        ``1 / p`` collisions (a Borgnakke-Larsen-style collision number
        Z = 1/p), while non-exchanging collisions still randomize the
        translational relative velocity and conserve energy exactly.
    name:
        Human-readable label.
    """

    alpha: float = MAXWELL_ALPHA
    rotational_dof: int = ROTATIONAL_DOF
    mass: float = 1.0
    internal_exchange_probability: float = 1.0
    name: str = "maxwell-diatomic"

    def __post_init__(self) -> None:
        if not self.alpha > 2:
            raise ConfigurationError(
                f"alpha must exceed 2 (got {self.alpha}); the selection "
                "rule's speed exponent 1 - 4/alpha diverges otherwise"
            )
        if self.rotational_dof < 0:
            raise ConfigurationError("rotational_dof must be >= 0")
        if self.mass <= 0:
            raise ConfigurationError("mass must be positive")
        if not 0.0 <= self.internal_exchange_probability <= 1.0:
            raise ConfigurationError(
                "internal_exchange_probability must be in [0, 1]"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def speed_exponent(self) -> float:
        """Exponent of relative speed in the selection rule, 1 - 4/alpha.

        0 for Maxwell molecules (probability independent of g), 1 for
        hard spheres (probability proportional to g).
        """
        if math.isinf(self.alpha):
            return 1.0
        return 1.0 - 4.0 / self.alpha

    @property
    def is_maxwell(self) -> bool:
        """True when the speed dependence drops out (eq. (8))."""
        return self.speed_exponent == 0.0

    @property
    def total_dof(self) -> int:
        """Translational plus internal degrees of freedom."""
        return TRANSLATIONAL_DOF + self.rotational_dof

    @property
    def relative_components(self) -> int:
        """Length of the collision algorithm's relative vector.

        Three translational relative components plus one component per
        internal degree of freedom (5 for the paper's diatomic).
        """
        return TRANSLATIONAL_DOF + self.rotational_dof

    @property
    def gamma(self) -> float:
        """Ratio of specific heats, (dof + 2) / dof."""
        return (self.total_dof + 2) / self.total_dof

    @property
    def rotational_energy_fraction(self) -> float:
        """Equilibrium fraction of thermal energy in rotation.

        Equipartition: each degree of freedom holds the same share, so
        the rotational fraction is ``rot_dof / total_dof`` (2/5 for the
        diatomic model).  Property tests drive relaxation to this value.
        """
        return self.rotational_dof / self.total_dof

    def speed_factor(self, g: np.ndarray, g_ref: float) -> np.ndarray:
        """Relative-speed factor ``(g / g_ref)**(1 - 4/alpha)`` of eq. (7).

        Vectorized over pair relative speeds ``g``.  Zero relative speed
        yields factor 0 for positive exponents (grazing pairs never
        collide for hard-sphere-like molecules) and is clamped to 0 for
        negative exponents (such pairs would have probability > 1, which
        the caller clamps anyway; returning 0 avoids division blowups
        on *exactly* coincident velocities, which carry no momentum
        exchange to perform).
        """
        expo = self.speed_exponent
        if expo == 0.0:
            return np.ones_like(np.asarray(g, dtype=np.float64))
        g = np.asarray(g, dtype=np.float64)
        if g_ref <= 0:
            raise ConfigurationError("g_ref must be positive")
        with np.errstate(divide="ignore", invalid="ignore"):
            factor = (g / g_ref) ** expo
        return np.where(g > 0, factor, 0.0)


def maxwell_molecule(rotational_dof: int = ROTATIONAL_DOF) -> MolecularModel:
    """The paper's molecule: Maxwell interaction, diatomic by default."""
    return MolecularModel(
        alpha=MAXWELL_ALPHA,
        rotational_dof=rotational_dof,
        name=f"maxwell-{rotational_dof}rot",
    )


def hard_sphere(rotational_dof: int = ROTATIONAL_DOF) -> MolecularModel:
    """Hard-sphere molecule (alpha -> infinity limit)."""
    return MolecularModel(
        alpha=math.inf,
        rotational_dof=rotational_dof,
        name=f"hard-sphere-{rotational_dof}rot",
    )


def vhs_like(alpha: float, rotational_dof: int = ROTATIONAL_DOF) -> MolecularModel:
    """A general inverse-power-law molecule (Future Work extension)."""
    return MolecularModel(
        alpha=alpha,
        rotational_dof=rotational_dof,
        name=f"ipl-{alpha:g}-{rotational_dof}rot",
    )
