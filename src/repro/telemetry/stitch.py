"""Cross-process trace stitching: one fleet timeline per service run.

Every job worker records Perfetto-loadable spans through its telemetry
hub (``span`` records in the job directory's ``events.jsonl``), and
the orchestrator records its own dispatch / run-envelope / watchdog
spans into ``orch_spans.jsonl``.  All of them timestamp with
``time.perf_counter`` -- CLOCK_MONOTONIC on Linux, one system-wide
axis -- so spans from different processes can be laid on a single
timeline without clock translation.

:func:`stitch_fleet_trace` merges them into one Chrome ``trace_event``
JSON (``fleet_trace.json``): the orchestrator becomes pid 1, each job
a pid of its own (its worker's driver/shard tids preserved as
threads), with ``process_name`` metadata carrying the job ids.  The
result renders in Perfetto as the fleet's gantt chart -- dispatch
latencies, retry gaps and per-job phase activity on aligned tracks --
and is validated by :func:`repro.telemetry.spans.validate_trace` in CI.

CLI: ``python -m repro.telemetry.stitch DATA_DIR [--out PATH]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Union

from repro.telemetry.spans import validate_trace
from repro.telemetry.stream import snapshot_records

PathLike = Union[str, pathlib.Path]

#: The orchestrator's fixed pid on the stitched timeline.
ORCHESTRATOR_PID = 1

#: File the orchestrator appends its span records to.
ORCH_SPANS_FILE = "orch_spans.jsonl"


def _job_dirs(data_dir: pathlib.Path) -> List[pathlib.Path]:
    """Job directories under a service data dir, stable order.

    A job directory is any subdirectory holding worker or telemetry
    artifacts -- discovery works on raw directories, no journal
    needed, so a half-dead service can still be stitched.
    """
    dirs = [
        d
        for d in sorted(data_dir.iterdir())
        if d.is_dir()
        and (
            (d / "worker.jsonl").exists() or (d / "events.jsonl").exists()
        )
    ]
    return dirs


def _span_events(
    records: Sequence[dict], pid: int, extra_args: Optional[dict] = None
) -> List[dict]:
    """Raw span records -> Chrome X events (absolute ts, remapped pid)."""
    events = []
    for rec in records:
        if rec.get("kind") != "span":
            continue
        ts = rec.get("ts")
        if ts is None:
            continue
        args = {"step": rec.get("step")}
        if rec.get("job_id") is not None:
            args["job_id"] = rec["job_id"]
        if extra_args:
            args.update(extra_args)
        events.append(
            {
                "ph": "X",
                "name": rec.get("name", "?"),
                "ts": float(ts),  # absolute for now; rebased below
                "dur": max(float(rec.get("dur", 0.0)), 0.0),
                "pid": pid,
                "tid": int(rec.get("tid", 0)),
                "args": args,
            }
        )
    return events


def stitch_fleet_trace(
    data_dir: PathLike, out: Optional[PathLike] = None
) -> dict:
    """Merge orchestrator + per-job spans into one fleet trace dict.

    Writes ``fleet_trace.json`` into ``data_dir`` (or ``out``) and
    returns the trace.  Jobs become pids 2, 3, ... in sorted job-id
    order; a job with no spans yet still gets its ``process_name``
    metadata so the fleet's shape is visible while it is queued.
    """
    data_dir = pathlib.Path(data_dir)
    events: List[dict] = []
    names: Dict[int, str] = {}

    orch = snapshot_records(data_dir / ORCH_SPANS_FILE, strict=False)
    events.extend(_span_events(orch, ORCHESTRATOR_PID))
    names[ORCHESTRATOR_PID] = "orchestrator"

    for i, job_dir in enumerate(_job_dirs(data_dir)):
        pid = ORCHESTRATOR_PID + 1 + i
        names[pid] = job_dir.name
        job_spans = snapshot_records(
            job_dir / "events.jsonl", strict=False
        )
        events.extend(_span_events(job_spans, pid))

    # Rebase every timestamp onto the earliest span and scale to the
    # microseconds Chrome expects.
    if events:
        t_base = min(e["ts"] for e in events)
        for e in events:
            e["ts"] = (e["ts"] - t_base) * 1e6
            e["dur"] = e["dur"] * 1e6

    tracks = sorted({(e["pid"], e["tid"]) for e in events})
    meta: List[dict] = []
    for pid, name in sorted(names.items()):
        meta.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for pid, tid in tracks:
        label = "driver" if tid == 0 else f"shard {tid}"
        if pid == ORCHESTRATOR_PID:
            label = "scheduler" if tid == 0 else f"slot {tid}"
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )

    trace = {
        "traceEvents": events + meta,
        "displayTimeUnit": "ms",
        "otherData": {
            "stitched_from": str(data_dir),
            "jobs": [n for p, n in sorted(names.items()) if p != ORCHESTRATOR_PID],
        },
    }
    out_path = pathlib.Path(out) if out is not None else (
        data_dir / "fleet_trace.json"
    )
    out_path.write_text(json.dumps(trace), encoding="utf-8")
    return trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: stitch a service data dir into a fleet trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.stitch",
        description=(
            "Merge orchestrator and per-job worker spans into one "
            "Perfetto-loadable fleet_trace.json"
        ),
    )
    parser.add_argument(
        "data_dir", help="service data directory (holds job subdirs)"
    )
    parser.add_argument(
        "--out", default=None, help="output path (default: DATA_DIR/fleet_trace.json)"
    )
    args = parser.parse_args(argv)
    trace = stitch_fleet_trace(args.data_dir, out=args.out)
    problems = validate_trace(trace)
    n_spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    pids = {e["pid"] for e in trace["traceEvents"]}
    out = args.out or str(pathlib.Path(args.data_dir) / "fleet_trace.json")
    print(
        f"stitched {n_spans} spans across {len(pids)} processes -> {out}"
    )
    if problems:
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
