"""Failure injection: corrupted state must be detected, not propagated.

A production solver's failure mode is rarely a crash -- it is silently
wrong numbers.  These tests inject the realistic corruptions (NaN
velocities, broken permutation tables, out-of-range cells, truncated
checkpoints, overflowing state) and require a loud, typed error.
"""

import numpy as np
import pytest

from repro.core.particles import ParticleArrays
from repro.core.sampling import CellSampler
from repro.core.simulation import Simulation
from repro.errors import (
    ConfigurationError,
    FixedPointOverflowError,
    ReproError,
)
from repro.fixedpoint import Q8_23
from repro.geometry.domain import Domain
from repro.io.snapshots import load_simulation, save_simulation
from repro.physics.freestream import Freestream
from repro.rng import make_rng


@pytest.fixture
def pop(rng):
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=8.0)
    return ParticleArrays.from_freestream(rng, 100, fs, (0, 10), (0, 10))


class TestStateCorruption:
    def test_nan_velocity_detected(self, pop):
        pop.u[13] = np.nan
        with pytest.raises(ConfigurationError, match="non-finite"):
            pop.validate()

    def test_inf_position_detected(self, pop):
        pop.x[5] = np.inf
        with pytest.raises(ConfigurationError, match="non-finite"):
            pop.validate()

    def test_nan_rotation_detected(self, pop):
        pop.rot[0, 1] = np.nan
        with pytest.raises(ConfigurationError, match="non-finite"):
            pop.validate()

    def test_duplicate_permutation_entry_detected(self, pop):
        pop.perm[7] = np.array([1, 1, 2, 3, 4], dtype=np.int8)
        with pytest.raises(ConfigurationError, match="permutation"):
            pop.validate()

    def test_clean_state_passes(self, pop):
        pop.validate()


class TestSamplerGuards:
    def test_out_of_range_cell_rejected(self, pop):
        d = Domain(10, 10)
        pop.cell[:] = 0
        pop.cell[3] = d.n_cells + 5
        s = CellSampler(d)
        with pytest.raises(ConfigurationError, match="out of range"):
            s.accumulate(pop)


class TestFixedPointGuards:
    def test_runaway_velocity_overflows_loudly(self):
        # A velocity beyond the Q8.23 range must raise, not wrap.
        with pytest.raises(FixedPointOverflowError):
            Q8_23.encode(np.array([300.0]))

    def test_accumulated_overflow_detected(self):
        big = Q8_23.encode(np.array([200.0]))
        with pytest.raises(FixedPointOverflowError):
            Q8_23.add(big, big)


class TestCheckpointCorruption:
    def test_truncated_checkpoint_fails_loudly(self, small_config, tmp_path):
        sim = Simulation(small_config)
        sim.run(3)
        path = tmp_path / "ckpt.npz"
        save_simulation(sim, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_simulation(path)

    def test_missing_array_fails_loudly(self, small_config, tmp_path):
        sim = Simulation(small_config)
        sim.run(2)
        path = tmp_path / "ckpt.npz"
        save_simulation(sim, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "flow_u"}
        np.savez_compressed(path, **arrays)
        with pytest.raises(Exception):
            load_simulation(path)


class TestRunRemainsFiniteUnderStress:
    def test_long_run_state_stays_finite(self, small_config):
        # End-to-end guard: nothing in the pipeline manufactures NaNs
        # even through plunger resets, reflections and refills.
        sim = Simulation(small_config)
        for _ in range(8):
            sim.run(15)
            sim.particles.validate()
        assert np.isfinite(sim.particles.total_energy())
