"""VAL3 -- the Knudsen bridge: surface pressure from continuum to
free-molecular.

The paper's two runs (lambda = 0 and lambda = 0.5) sit at the continuum
end of the transitional regime its introduction motivates (Kn > 0.1
vehicles).  Sweeping the mean free path across four decades bridges the
two exact limits this library carries:

* Kn -> 0: ramp pressure = oblique-shock p2 (9.2 p_inf at M4 / 30 deg);
* Kn -> inf: free-molecular specular flux (22.9 p_inf).

The measured bridge must match both anchors and pass monotonically
between them -- a transitional-regime validation no single-limit theory
can provide, which is exactly DSMC's reason to exist.
"""

import math

from repro.analysis.report import ExperimentRecord
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.surface import oblique_shock_surface_pressure_ratio
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics import theory
from repro.physics.freestream import Freestream

WEDGE_HALF = Wedge(x_leading=10.0, base=12.5, angle_deg=30.0)

#: Freestream mean free paths (cell widths): continuum-ish to
#: effectively collisionless (wedge base 12.5 => Kn 0.04 ... 8000).
SWEEP = (0.0, 0.5, 5.0, 1.0e5)


def _pressure_at(lambda_mfp: float) -> float:
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=lambda_mfp, density=14.0
        ),
        wedge=WEDGE_HALF,
        seed=int(13 + lambda_mfp) % 10_000,
    )
    sim = Simulation(cfg)
    sim.run(200)
    sim.run(220, sample=True)
    fs = cfg.freestream
    p_inf = fs.density * fs.rt
    return float(sim.surface.ramp_pressure()[2:-2].mean() / p_inf)


def test_val_knudsen_bridge(benchmark, emit):
    pressures = {}
    for lam in SWEEP[:-1]:
        pressures[lam] = _pressure_at(lam)
    pressures[SWEEP[-1]] = benchmark.pedantic(
        _pressure_at, args=(SWEEP[-1],), rounds=1, iterations=1
    )

    continuum_anchor = oblique_shock_surface_pressure_ratio(4.0, 30.0, 1.4)
    fm_anchor = theory.free_molecular_specular_pressure_ratio(
        4.0, math.radians(30.0)
    )

    rec = ExperimentRecord(
        "VAL3", "ramp pressure across the Knudsen range (p / p_inf)"
    )
    rec.add(
        "continuum anchor (lambda = 0)",
        continuum_anchor,
        pressures[0.0],
        rel_tol=0.12,
        note="oblique-shock p2",
    )
    for lam in SWEEP[1:-1]:
        kn = lam / WEDGE_HALF.base
        rec.add(
            f"transitional, Kn = {kn:g}",
            None,
            pressures[lam],
            note="between the limits",
        )
    rec.add(
        "free-molecular anchor (Kn >> 1)",
        fm_anchor,
        pressures[SWEEP[-1]],
        rel_tol=0.12,
        note="doubled incident normal flux",
    )
    emit(rec)

    values = [pressures[lam] for lam in SWEEP]
    assert all(a < b + 1e-9 for a, b in zip(values, values[1:])), (
        "pressure must bridge monotonically from continuum to "
        f"free-molecular: {values}"
    )
    assert rec.metrics[0].agrees()
    assert rec.metrics[-1].agrees()
