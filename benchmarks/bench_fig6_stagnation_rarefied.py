"""FIG6 -- Figure 6: rarefied stagnation-region density surface.

"Comparing this with figure 3 provides a more visual understanding of
the effect flow rarefaction has made on the shock": at the same station
by the wedge face, the rarefied density rise through the shock is
visibly wider than the near-continuum one, while the plateau level at
the face still approaches the Rankine-Hugoniot value.
"""

import numpy as np

from repro.analysis.contour import save_field_npz
from repro.analysis.fields import stagnation_rise_profile, stagnation_window
from repro.analysis.report import ExperimentRecord
from repro.analysis.shock import vertical_rise_width
from repro.constants import PAPER_DENSITY_RATIO

from benchmarks.common import DOMAIN, OUT_DIR, WEDGE

#: Stagnation station: 75% of the ramp chord.
X_STATION = WEDGE.x_leading + 0.75 * WEDGE.base


def test_fig6_rarefied_stagnation_surface(
    benchmark, rarefied_solution, continuum_solution, emit
):
    rho_rar = rarefied_solution.density_ratio_field()
    rho_con = continuum_solution.density_ratio_field()

    def regenerate():
        return (
            vertical_rise_width(rho_rar, WEDGE, X_STATION),
            vertical_rise_width(rho_con, WEDGE, X_STATION),
        )

    width_rar, width_con = benchmark(regenerate)

    prof_rar = stagnation_rise_profile(rho_rar, WEDGE, (1.0, 2.0, 3.0, 4.0))

    rec = ExperimentRecord("FIG6", "rarefied stagnation-region surface")
    rec.add(
        "peak density off the face",
        PAPER_DENSITY_RATIO,
        float(np.max(prof_rar)),
        rel_tol=0.3,
        note="the rise still approaches Rankine-Hugoniot",
    )
    rec.add(
        "shock rise width at stagnation station, rarefied (cells)",
        None,
        width_rar,
        note="fig 6's diffuse rise",
    )
    rec.add(
        "shock rise width at stagnation station, continuum (cells)",
        None,
        width_con,
        note="fig 3's sharper rise",
    )
    rec.add(
        "rise-width ratio (rarefied / continuum)",
        5.0 / 3.0,
        width_rar / width_con,
        rel_tol=0.5,
        note="paper reads 5 vs 3 cells off figs 4 and 1",
    )
    emit(rec)

    win = stagnation_window(WEDGE, DOMAIN)
    OUT_DIR.mkdir(exist_ok=True)
    save_field_npz(
        str(OUT_DIR / "fig6_stagnation.npz"),
        rarefied=win.extract(rho_rar),
        continuum=win.extract(rho_con),
    )
    # The visual point of fig 6 vs fig 3: the rarefied rise is wider.
    assert width_rar > width_con
