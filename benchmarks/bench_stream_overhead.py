"""STREAM -- cost of one live SSE watcher on a running service job.

Times the same 400-step wedge job two ways, both submitted over HTTP
to a one-worker :class:`repro.service.Orchestrator` behind a
:class:`repro.service.ServiceAPI`:

* **quiet**: no client attached -- the PR-8 service baseline;
* **watched**: one :meth:`repro.service.ServiceClient.stream` consumer
  follows the job's SSE feed from submission to the terminal ``state``
  event.

The figure of merit is ``overhead_fraction``, the watched run's
submission-to-completion slowdown over the quiet run.  The
observability milestone requires < 2%: tailing is byte-offset
incremental reads of files the worker writes anyway, so a watcher must
be nearly free.

Standalone: ``PYTHONPATH=src python benchmarks/bench_stream_overhead.py``
writes ``BENCH_stream.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

STEPS = 400
CHUNK = 10  # heartbeat cadence, both modes

#: Same job shape as bench_service: paper geometry at reduced density.
OVERRIDES = {
    "nx": 98, "ny": 64, "density": 12.0,
    "transient": 0, "average": STEPS,
}
SEED = 2027

#: Runs in a fresh interpreter so the worker forks from a lean parent
#: (see bench_service).  Both modes pay the same HTTP submit/poll path;
#: the only difference is the attached SSE consumer thread.
_SCRIPT = """
import json, sys, threading, time
from repro.service import (
    DONE, Orchestrator, OrchestratorConfig, ServiceAPI, ServiceClient,
)

steps, data_dir, attach = int(sys.argv[1]), sys.argv[2], sys.argv[3] == "1"
overrides = json.loads(sys.argv[4])
overrides["average"] = steps
orch = Orchestrator(
    data_dir,
    OrchestratorConfig(
        workers=1,
        heartbeat_every={chunk},
        poll_interval=0.25,
        audit_every=0,
    ),
)
api = ServiceAPI(orch, port=0)
client = ServiceClient("http://127.0.0.1:%d" % api.port)
consumed = []
t0 = time.perf_counter()
job_id = client.submit(
    scenario="wedge", seed={seed}, overrides=overrides
)["job_id"]
watcher = None
if attach:
    def _consume():
        for event, data in client.stream(job_id):
            consumed.append(event)
    watcher = threading.Thread(target=_consume, daemon=True)
    watcher.start()
while True:
    status = client.status(job_id)
    if status["terminal"]:
        break
    time.sleep(0.02)
elapsed = time.perf_counter() - t0
if status["state"] != DONE:
    raise SystemExit("job ended {{}}".format(status["state"]))
if watcher is not None:
    watcher.join(timeout=30)
    assert consumed.count("heartbeat") >= 3, consumed
    assert consumed[-1] == "state", consumed
api.close()
orch.shutdown()
print(json.dumps({{"elapsed": elapsed, "events": len(consumed)}}))
"""


def _one_run(steps: int, attach: bool) -> tuple:
    with tempfile.TemporaryDirectory(prefix="bench_stream_") as d:
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _SCRIPT.format(chunk=CHUNK, seed=SEED),
                str(steps),
                d,
                "1" if attach else "0",
                json.dumps(OVERRIDES),
            ],
            capture_output=True,
            text=True,
        )
    if proc.returncode != 0:
        raise RuntimeError(f"bench run failed:\n{proc.stderr}")
    out = json.loads(proc.stdout.splitlines()[-1])
    return out["elapsed"], out["events"]


def run_benchmark(steps: int = STEPS, repeats: int = 3) -> dict:
    # Alternate quiet/watched pairs and keep each mode's best (the
    # shared bench host sees CPU-steal noise well above the effect
    # being measured).
    _one_run(10, attach=False)  # warm imports/allocator
    quiets, watcheds, events = [], [], []
    for _ in range(repeats):
        quiets.append(_one_run(steps, attach=False)[0])
        w, n = _one_run(steps, attach=True)
        watcheds.append(w)
        events.append(n)
    quiet, watched = min(quiets), min(watcheds)
    overhead = watched / quiet - 1.0
    return {
        "bench": "stream_overhead",
        "steps": steps,
        "repeats": repeats,
        "overhead_fraction": overhead,
        "target_overhead_fraction": 0.02,
        "events_consumed": max(events),
        "note": (
            "overhead_fraction is the submission-to-completion slowdown "
            f"of a {steps}-step wedge service job with one SSE client "
            "attached (repro watch / GET /jobs/<id>/stream) over the "
            f"same job with none, best of {repeats} alternating pairs.  "
            "Both modes submit and poll over HTTP; the delta is the "
            "tail-follower reads plus SSE writes.  The observability "
            "milestone requires < 2%: the watcher only re-reads bytes "
            "appended since its cursor, so its cost is independent of "
            "run length."
        ),
        "runs": [
            {"mode": "quiet", "seconds": quiet, "samples": quiets},
            {"mode": "watched", "seconds": watched, "samples": watcheds,
             "events_consumed": events},
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    result = run_benchmark(steps=args.steps, repeats=args.repeats)
    out = REPO_ROOT / "BENCH_stream.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"quiet    : {result['runs'][0]['seconds']:.2f} s\n"
        f"watched  : {result['runs'][1]['seconds']:.2f} s\n"
        f"overhead : {100 * result['overhead_fraction']:+.1f}% "
        f"(target < {100 * result['target_overhead_fraction']:.0f}%)\n"
        f"events   : {result['events_consumed']} consumed by the watcher"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
