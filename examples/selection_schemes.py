#!/usr/bin/env python
"""Compare the three collision-selection schemes the paper discusses.

Runs Bird's per-cell time counter, the Nanbu/Ploss one-sided scheme and
the McDonald-Baganoff pairwise selection rule on an identical heat-bath
relaxation workload and prints throughput, conservation drift and
distribution quality -- the quantitative version of the paper's
"Selection of Collision Partners" argument.

Run:
    python examples/selection_schemes.py
"""

from repro.baselines import (
    BaganoffSelection,
    BirdNTC,
    BirdTimeCounter,
    HeatBath,
    NanbuPloss,
)
from repro.physics.freestream import Freestream


def main() -> None:
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=2.0, density=100.0)
    bath = HeatBath(n_particles=40_000, n_cells=400, freestream=fs)
    print(
        f"heat bath: {bath.n_particles} particles, {bath.n_cells} cells, "
        f"P_c,inf = {fs.collision_probability:.3f}\n"
    )
    header = (
        f"{'scheme':>20s} {'collisions':>11s} {'E drift':>10s} "
        f"{'p drift':>10s} {'kurtosis':>9s} {'seconds':>8s}"
    )
    print(header)
    for scheme in (
        BaganoffSelection(fs),
        BirdTimeCounter(fs),
        BirdNTC(fs),
        NanbuPloss(fs),
    ):
        r = bath.run(scheme, steps=30, seed=3)
        print(
            f"{r.name:>20s} {r.total_collisions:11d} "
            f"{r.energy_drift:10.2e} {r.momentum_drift:10.2e} "
            f"{r.final_kurtosis:9.3f} {r.seconds:8.2f}"
        )

    print(
        "\nReadings (the paper's argument):\n"
        "  * mcdonald-baganoff and bird conserve exactly; nanbu-ploss\n"
        "    drifts (it conserves only the cell means);\n"
        "  * mcdonald-baganoff is fully vectorized at particle level,\n"
        "    so it runs far faster than bird's per-cell counter loop;\n"
        "  * all three Gaussianize the bath (kurtosis -> 0)."
    )


if __name__ == "__main__":
    main()
