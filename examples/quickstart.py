#!/usr/bin/env python
"""Quickstart: Mach 4 flow over a 30-degree wedge in ~100 lines of output.

Runs a reduced-scale version of the paper's validation problem -- the
``wedge`` scenario from the registry at half grid -- prints live
diagnostics, an ASCII density-contour map, and the figure-1 validation
numbers (shock angle, Rankine-Hugoniot density ratio) against theory.

Run:
    python examples/quickstart.py

Equivalent CLI:
    python -m repro run wedge --nx 49 --ny 32 --seed 1
"""

import math
import time

from repro.analysis.contour import render_ascii
from repro.analysis.shock import fit_shock_angle, post_shock_plateau
from repro.physics import theory
from repro.scenarios import get


def main() -> None:
    # Half the paper's grid; the scenario supplies the freestream
    # (Mach 4, 12 particles/cell, near-continuum) and the wedge
    # placement (x_leading = 10, base = 12.5 at nx = 49).
    spec = get("wedge")
    sim = spec.build_simulation({"nx": 49, "ny": 32, "seed": 1})
    config = sim.config
    print(
        f"seeded {sim.particles.n} flow particles + "
        f"{sim.reservoir.size} reservoir particles"
    )

    t0 = time.time()
    transient, averaging = 250, 250
    for chunk in range(5):
        diag = sim.run(transient // 5)
        print(
            f"step {diag.step:4d}: {diag.n_flow} in flow, "
            f"{diag.n_collisions} collisions, "
            f"pairing efficiency {diag.pairing_efficiency:.2f}"
        )
    sim.run(averaging, sample=True)
    print(f"done in {time.time() - t0:.1f} s")

    rho = sim.density_ratio_field()
    print("\nDensity contours (flow left to right, wedge on the floor):")
    print(render_ascii(rho))

    fit = fit_shock_angle(rho, config.wedge)
    plateau = post_shock_plateau(rho, config.wedge, fit)
    beta_theory = theory.shock_angle_deg(4.0, 30.0)
    ratio_theory = theory.oblique_shock_density_ratio(4.0, math.radians(30.0))
    print(f"\nshock angle:    {fit.angle_deg:6.2f} deg   (theory {beta_theory:.2f})")
    print(f"density ratio:  {plateau:6.2f}       (Rankine-Hugoniot {ratio_theory:.2f})")


if __name__ == "__main__":
    main()
