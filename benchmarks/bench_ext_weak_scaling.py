"""EXT1 -- weak scaling: grow the machine with the problem.

Figure 7 holds the machine at 32k processors and grows the problem.
The complementary question a 1989 buyer would ask -- "if I double the
machine *and* the problem, does per-particle time hold?" -- is
answerable from the same calibrated cost structure: per-particle ALU
and volume terms are flat by construction, while the scan-tree and
router-setup terms grow like the hypercube dimension d = log2(P),
amortized over the VP ratio.

Method note: the calibration must be held fixed (anchored once, at the
paper's 32k machine) while the structural machine is swapped -- a
per-machine calibration would normalize every machine to 7.2 µs and
erase exactly the effect under study.  Two emulated machines
cross-check the model under the same shared calibration.
"""

import numpy as np

from repro.analysis.report import ExperimentRecord
from repro.cm.machine import CM2
from repro.cm.timing import CM2TimingModel
from repro.constants import PAPER_CM2_PROCESSORS, PAPER_CM2_US_PER_PARTICLE
from repro.core.engine_cm import CMSimulation
from repro.core.simulation import SimulationConfig
from repro.geometry.domain import Domain
from repro.physics.freestream import Freestream

#: Machine sizes (physical processors), all at VPR 16.
MACHINES = tuple(2**k for k in (10, 12, 14, 15, 16))
VPR = 16

#: One calibration for everything: the paper's machine.
TM = CM2TimingModel(machine=CM2(n_processors=PAPER_CM2_PROCESSORS))


def _measured_point(n_procs: int) -> float:
    machine = CM2(n_processors=n_procs)
    n_target = n_procs * VPR
    ny = max(int(np.sqrt(n_target / 16.0)), 6)
    cfg = SimulationConfig(
        domain=Domain(2 * ny, ny),
        freestream=Freestream(
            mach=4.0, c_mp=0.14, lambda_mfp=0.5,
            density=n_target / (2 * ny * ny),
        ),
        wedge=None,
        seed=71,
    )
    sim = CMSimulation(cfg, machine=machine)
    sim.run(5)
    # Shared calibration: convert this machine's ledger with TM.
    return TM.per_particle_us(sim.ledger, n_flow_particles=sim.state.n).total


def _step_time_us(n_procs: int) -> float:
    """Model wall time of ONE step at VPR 16 on a P-processor machine.

    Per-particle time trivially falls as 1/P (more particles served per
    step); the weak-scaling question is about the *step wall time*,
    which should be flat apart from the log2(P) tree/setup terms.
    """
    n = n_procs * VPR
    pb = TM.predict_for_machine(CM2(n_processors=n_procs), n)
    return pb.total * n * TM.flow_fraction


def test_ext_weak_scaling(benchmark, emit):
    model = {p: _step_time_us(p) for p in MACHINES}
    base = model[MACHINES[0]]
    measured_small = _measured_point(64)
    measured_big = benchmark.pedantic(
        _measured_point, args=(1024,), rounds=1, iterations=1
    )

    rec = ExperimentRecord(
        "EXT1", "weak scaling at VPR 16 (step wall time, relative)"
    )
    for p in MACHINES:
        rec.add(
            f"model step time, {p // 1024}k processors (x 1k machine)",
            None,
            model[p] / base,
            note="growth = scan-tree + router-setup terms, ~log2(P)",
        )
    rec.add(
        "per-particle at the paper anchor (32k, us)",
        PAPER_CM2_US_PER_PARTICLE,
        TM.predict_for_machine(
            CM2(n_processors=32 * 1024), 32 * 1024 * VPR
        ).total,
        rel_tol=0.01,
    )
    # measured_* are per-particle; step time = per-particle x n, and
    # n scales with the machine, so the step-time ratio is the
    # per-particle ratio times the machine ratio.
    ratio_measured = (measured_big / measured_small) * (1024 / 64)
    rec.add(
        "measured step-time growth, 64 -> 1024 procs (x ideal)",
        None,
        ratio_measured,
        note="1.0 = perfect weak scaling; slight excess = d growth "
             "(hypercube dimension 6 -> 10)",
    )
    emit(rec)

    # Weak scaling is good: 64x more processors (and particles) costs
    # only a modest step-time increase from the log-depth collectives.
    vals = [model[p] for p in MACHINES]
    assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:])), (
        "step time grows (slowly) with machine size"
    )
    assert vals[-1] / vals[0] < 1.35
    assert 0.9 < ratio_measured < 1.4
