"""HOST -- where the time goes on a modern vector machine (this host).

The paper's phase table (motion 14 / sort 27 / selection 20 / collision
39 %) reflects the CM-2's cost structure.  Profiling the vectorized
NumPy engine on the same workload shows how the balance shifts on a
cache-based vector host -- the kind of measurement the optimizing
guides insist on ("no optimization without measuring"), and useful
context for anyone extending the hot paths.
"""

import time

from repro.analysis.report import ExperimentRecord
from repro.constants import PAPER_PHASE_FRACTIONS
from repro.core import motion
from repro.core.cells import assign_cells, cell_populations
from repro.core.collision import collide_pairs
from repro.core.pairing import even_odd_pairs
from repro.core.selection import select_collisions
from repro.core.simulation import Simulation, SimulationConfig
from repro.core.sortstep import sort_by_cell
from repro.geometry.domain import Domain
from repro.geometry.wedge import Wedge
from repro.physics.freestream import Freestream

STEPS = 40


def _profiled_run():
    cfg = SimulationConfig(
        domain=Domain(98, 64),
        freestream=Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=12.0),
        wedge=Wedge(x_leading=20.0, base=25.0, angle_deg=30.0),
        seed=41,
    )
    sim = Simulation(cfg)
    sim.run(10)  # warm
    t = {"motion": 0.0, "sort": 0.0, "selection": 0.0, "collision": 0.0}
    parts = sim.particles
    for _ in range(STEPS):
        t0 = time.perf_counter()
        motion.advance(parts)
        parts, _ = sim.boundaries.apply_rebuilding(parts, sim.reservoir, sim.rng)
        t1 = time.perf_counter()
        assign_cells(parts, cfg.domain)
        sort_by_cell(parts, rng=sim.rng, scale=cfg.sort_scale)
        t2 = time.perf_counter()
        pairs = even_odd_pairs(parts.cell)
        counts = cell_populations(parts.cell, cfg.domain.n_cells)
        sel = select_collisions(
            parts, pairs, cfg.freestream, cfg.model, counts,
            volume_fractions=sim.volume_fractions.reshape(-1), rng=sim.rng,
        )
        t3 = time.perf_counter()
        collide_pairs(
            parts, pairs.first[sel.accept], pairs.second[sel.accept],
            rng=sim.rng,
        )
        t4 = time.perf_counter()
        t["motion"] += t1 - t0
        t["sort"] += t2 - t1
        t["selection"] += t3 - t2
        t["collision"] += t4 - t3
    sim.particles = parts
    return t, parts.n


def test_host_phase_profile(benchmark, emit):
    (times, n_flow) = benchmark.pedantic(_profiled_run, rounds=1, iterations=1)
    total = sum(times.values())

    rec = ExperimentRecord("HOST", "phase profile: NumPy engine vs CM-2")
    for phase, seconds in times.items():
        rec.add(
            f"{phase} fraction (host)",
            PAPER_PHASE_FRACTIONS[phase],
            seconds / total,
            rel_tol=10.0,
            note="paper column is the CM-2 fraction, for contrast",
        )
    rec.add(
        "us / particle / step (host, full step)",
        None,
        total / STEPS / n_flow * 1e6,
    )
    emit(rec)

    # Structural sanity rather than hardware-specific numbers: every
    # phase costs something, and the collisionful half (sort + selection
    # + collision) dominates, as on the CM-2.
    assert all(v > 0 for v in times.values())
    heavy = times["sort"] + times["selection"] + times["collision"]
    assert heavy > times["motion"]
