"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied.

    Raised, for example, when a wedge does not fit inside the wind
    tunnel, when the freestream collision probability exceeds the
    validity bound of the selection rule, or when a fixed-point value
    overflows the Q8.23 format.
    """


class ValidationError(ReproError):
    """A scenario's golden/closed-form validation failed.

    Carries the full per-check report text so CI logs show which
    observable drifted and by how much.
    """


class FixedPointOverflowError(ReproError):
    """A fixed-point operation overflowed the 32-bit word."""


class MachineError(ReproError):
    """An invalid operation on the Connection Machine emulation substrate.

    Raised for mismatched field lengths, sends outside the virtual
    processor set, or exceeding per-processor memory.
    """


class GeometryError(ConfigurationError):
    """Invalid geometric configuration (wedge outside domain, etc.)."""


class ResilienceError(ReproError):
    """Base class of the parallel-fault taxonomy.

    Every fault the supervised execution layer can detect -- worker
    death, hangs, exchange overflows, invariant violations, corrupted
    checkpoints -- derives from this class and carries structured
    context (step, shard, counts, ...) in :attr:`context`, so a
    supervisor can decide on a recovery action without parsing message
    strings.
    """

    def __init__(self, message: str, **context) -> None:
        self.context = {k: v for k, v in context.items() if v is not None}
        if self.context:
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(self.context.items())
            )
            message = f"{message} [{detail}]"
        super().__init__(message)


class WorkerCrashError(ResilienceError):
    """A shard worker died or raised during a sharded step.

    Covers both a dead worker process (the step barrier breaks and the
    parent finds exited children) and an exception piped out of a
    still-running worker; ``context`` distinguishes them (``dead`` vs
    ``traceback``).
    """


class WorkerHangError(ResilienceError):
    """A sharded step or gather timed out with every worker still alive.

    The signature of a wedged (not crashed) pool: a deadlock, an
    unkillable syscall, or a pathologically slow shard.  Distinct from
    :class:`WorkerCrashError` so callers can choose a different remedy
    (kill + respawn vs plain respawn).
    """


class ExchangeOverflowError(ResilienceError):
    """A migration channel received more particles than its capacity.

    The shared-memory exchange buffers are sized at bind time; a local
    density spike (or an injected fault) that overflows one must fail
    loudly rather than silently dropping particles.
    """


class InvariantViolationError(ResilienceError):
    """A runtime audit found physically impossible simulation state.

    Raised by :class:`repro.resilience.audit.InvariantAuditor` when a
    conservation or range invariant breaks: particle-count accounting,
    non-finite state, fixed-point range, cell-index consistency, slab
    containment, or migration-channel conservation.
    """


class CheckpointCorruptionError(ResilienceError):
    """A checkpoint archive is truncated, unreadable, or incomplete."""


class RecoveryExhaustedError(ResilienceError):
    """Supervised recovery gave up: retry budget spent or no checkpoint
    restorable.  Carries the retry count and the last underlying fault
    in ``context``."""


class ServiceError(ResilienceError):
    """Base class of the simulation-as-a-service failure taxonomy.

    The orchestrator, the job store and the HTTP layer raise
    subclasses of this so the API can map each failure onto a stable
    status code (429 backpressure, 404 unknown job, 409 bad state, ...)
    without parsing message strings.
    """


class BackpressureError(ServiceError):
    """The bounded submission queue is full.

    Submitting must fail loudly (HTTP 429) instead of accepting
    unbounded work; ``context`` carries the queue depth and limit so
    clients can implement their own backoff.
    """


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the store."""


class JobStateError(ServiceError):
    """An invalid job state transition was attempted.

    Raised in particular for any transition *out of* a terminal state
    -- the property that makes "every job reaches exactly one terminal
    state" enforceable rather than aspirational.
    """


class ServiceJournalError(ServiceError):
    """The service journal is unreadable beyond a torn tail.

    A crash can tear the *final* record of the append-only journal
    (and replay tolerates exactly that); garbage anywhere earlier
    means real corruption and must not be silently skipped.
    """


class JournalVersionError(ServiceJournalError):
    """The journal was recorded by a newer schema version.

    Replaying records this build does not understand could silently
    mis-reconstruct the job table, so the store refuses instead.
    """
