"""Input/output: simulation checkpoints and field dumps.

The paper's production runs take 3.5 hours on the CM-2 (1200 steps to
steady state + 2000 averaging); any practical reproduction needs to
checkpoint the particle state so the averaging phase can be re-run or
extended without repeating the transient.  :mod:`repro.io.snapshots`
provides exact save/restore of a simulation (particles, reservoir,
plunger phase, RNG stream and accumulated statistics).
"""

from repro.io.snapshots import load_simulation, save_simulation

__all__ = ["save_simulation", "load_simulation"]
