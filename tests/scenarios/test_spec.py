"""Scenario spec: round-trip identity, TOML sync, malformed rejection."""

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import ScenarioSpec, all_specs, get

REPO = pathlib.Path(__file__).resolve().parents[2]
TOML_DIR = REPO / "examples" / "scenarios"


def minimal_dict():
    """A valid spec dict for perturbation tests."""
    return {
        "name": "t",
        "title": "a test scenario",
        "description": "perturbation fixture",
        "geometry": {
            "kind": "wedge",
            "x_leading": 10.0,
            "base": 12.5,
            "angle_deg": 30.0,
        },
        "freestream": {
            "mach": 4.0,
            "c_mp": 0.14,
            "lambda_mfp": 0.0,
            "density": 10.0,
        },
        "grid": {"nx": 49, "ny": 32},
        "schedule": {"transient": 10, "average": 10},
        "seed": 1,
        "validation": {
            "checks": [
                {
                    "name": "upstream",
                    "kind": "band_mean",
                    "x": [2, 8],
                    "y": [2, 28],
                    "expect": "const",
                    "value": 1.0,
                    "abs_tol": 0.1,
                }
            ]
        },
    }


class TestRoundTrip:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_dict_round_trip_identity(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_toml_round_trip_identity(self, spec, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / f"{spec.name}.toml"
        path.write_text(spec.to_toml())
        assert ScenarioSpec.from_toml(path) == spec

    def test_minimal_dict_is_valid(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        assert spec.name == "t"
        assert not spec.is_3d


class TestCommittedTomlSync:
    """examples/scenarios/*.toml must mirror the registry exactly."""

    def test_every_scenario_has_a_toml_file(self):
        missing = [
            s.name
            for s in all_specs()
            if not (TOML_DIR / f"{s.name}.toml").exists()
        ]
        assert not missing, (
            f"scenarios without examples/scenarios/<name>.toml: {missing}; "
            "regenerate with ScenarioSpec.to_toml()"
        )

    def test_no_orphan_toml_files(self):
        from repro.scenarios import names

        orphans = [
            p.name
            for p in TOML_DIR.glob("*.toml")
            if p.stem not in names()
        ]
        assert not orphans

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_toml_file_equals_registered_spec(self, spec):
        pytest.importorskip("tomllib")
        path = TOML_DIR / f"{spec.name}.toml"
        assert ScenarioSpec.from_toml(path) == spec, (
            f"{path} drifted from the registered spec; regenerate it "
            "with spec.to_toml()"
        )


class TestMalformedSpecs:
    @pytest.mark.parametrize("key", [
        "name", "title", "geometry", "freestream", "grid", "schedule",
        "seed", "validation",
    ])
    def test_missing_required_key(self, key):
        d = minimal_dict()
        del d[key]
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(d)

    def test_unknown_top_level_key(self):
        d = minimal_dict()
        d["wedgle"] = {}
        with pytest.raises(ConfigurationError, match="wedgle"):
            ScenarioSpec.from_dict(d)

    def test_unknown_geometry_kind(self):
        d = minimal_dict()
        d["geometry"] = {"kind": "sphere", "radius": 3.0}
        with pytest.raises(ConfigurationError, match="sphere"):
            ScenarioSpec.from_dict(d)

    def test_bad_geometry_parameters(self):
        d = minimal_dict()
        d["geometry"] = {"kind": "cylinder", "cx": 20.0, "bogus": 1.0}
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(d)

    def test_non_mapping_section(self):
        d = minimal_dict()
        d["freestream"] = [4.0, 0.14]
        with pytest.raises(ConfigurationError, match="freestream"):
            ScenarioSpec.from_dict(d)

    def test_non_integer_grid(self):
        d = minimal_dict()
        d["grid"] = {"nx": "wide", "ny": 32}
        with pytest.raises(ConfigurationError, match="nx"):
            ScenarioSpec.from_dict(d)

    def test_missing_freestream_field(self):
        d = minimal_dict()
        del d["freestream"]["density"]
        with pytest.raises(ConfigurationError, match="density"):
            ScenarioSpec.from_dict(d)

    def test_empty_checks_rejected(self):
        d = minimal_dict()
        d["validation"] = {"checks": []}
        with pytest.raises(ConfigurationError, match="checks"):
            ScenarioSpec.from_dict(d)

    def test_check_without_expect(self):
        d = minimal_dict()
        del d["validation"]["checks"][0]["expect"]
        with pytest.raises(ConfigurationError, match="expect"):
            ScenarioSpec.from_dict(d)

    def test_unknown_validation_override_key(self):
        d = minimal_dict()
        d["validation"]["overrides"] = {"bogus": 3}
        with pytest.raises(ConfigurationError, match="bogus"):
            ScenarioSpec.from_dict(d)

    def test_placement_on_non_wedge(self):
        d = minimal_dict()
        d["geometry"] = {"kind": "cylinder", "placement": "paper"}
        with pytest.raises(ConfigurationError, match="placement"):
            ScenarioSpec.from_dict(d)

    def test_unsteady_requires_positive_windows(self):
        d = minimal_dict()
        d["unsteady"] = {"windows": 0, "window_steps": 45}
        with pytest.raises(ConfigurationError, match="windows"):
            ScenarioSpec.from_dict(d)


class TestBuilding:
    def test_paper_placement_matches_legacy_expressions(self):
        body = get("wedge").build_body(nx=98)
        assert body.x_leading == 98 / 4.9
        assert body.base == 98 / 3.92
        assert body.angle_deg == 30.0

    def test_angle_override_rejected_on_non_wedge(self):
        with pytest.raises(ConfigurationError, match="angle"):
            get("cylinder").build_config(angle=25.0)

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            get("wedge").build_config(bogus=1)

    def test_3d_spec_rejects_2d_config(self):
        with pytest.raises(ConfigurationError, match="three-dimensional"):
            get("wedge3d").build_config()

    def test_3d_spec_rejects_engine_kwargs(self):
        with pytest.raises(ConfigurationError, match="3-D driver"):
            get("wedge3d").build_simulation(telemetry=object())

    def test_build_config_tags_scenario_name(self):
        config = get("cylinder").build_config()
        assert config.scenario == "cylinder"


class TestDigest:
    """ScenarioSpec.digest(): the service result-cache key material."""

    def test_digest_is_sha256_hex(self):
        digest = ScenarioSpec.from_dict(minimal_dict()).digest()
        assert len(digest) == 64
        int(digest, 16)  # hex or raise

    def test_digest_survives_dict_round_trip(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.digest() == spec.digest()

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_registry_digests_survive_toml_round_trip(self, spec, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / f"{spec.name}.toml"
        path.write_text(spec.to_toml())
        assert ScenarioSpec.from_toml(path).digest() == spec.digest()

    def test_digest_insensitive_to_dict_ordering(self):
        d = minimal_dict()
        scrambled = dict(reversed(list(d.items())))
        assert (
            ScenarioSpec.from_dict(d).digest()
            == ScenarioSpec.from_dict(scrambled).digest()
        )

    def test_any_physics_change_moves_the_digest(self):
        base = ScenarioSpec.from_dict(minimal_dict()).digest()
        bumped = minimal_dict()
        bumped["freestream"]["mach"] = 4.5
        assert ScenarioSpec.from_dict(bumped).digest() != base

    def test_distinct_registry_scenarios_have_distinct_digests(self):
        digests = [s.digest() for s in all_specs()]
        assert len(set(digests)) == len(digests)
