"""Shared fixtures for the service suite: tiny jobs, fast schedulers."""

from __future__ import annotations

import pytest

from repro.service import Orchestrator, OrchestratorConfig

#: A wedge small enough that a full job finishes in a couple of
#: seconds while still crossing several checkpoint/heartbeat chunks.
TINY = {"nx": 32, "ny": 16, "density": 6.0, "transient": 0, "average": 24}


def fast_config(**overrides) -> OrchestratorConfig:
    base = dict(
        workers=2,
        queue_limit=8,
        heartbeat_every=8,
        heartbeat_timeout=30.0,
        poll_interval=0.02,
        backoff_base=0.05,
        backoff_jitter=0.5,
        prom_every=0.5,
    )
    base.update(overrides)
    return OrchestratorConfig(**base)


@pytest.fixture
def tiny_overrides():
    return dict(TINY)


@pytest.fixture
def orchestrator(tmp_path):
    """A running orchestrator on a temp data dir, shut down afterwards."""
    orch = Orchestrator(tmp_path / "svc", fast_config())
    yield orch
    if not orch._dead:
        orch.shutdown()


def wait_terminal(orch, job_id, timeout=120.0, poll=0.05):
    import time

    deadline = time.time() + timeout
    while time.time() < deadline:
        status = orch.status(job_id)
        if status["terminal"]:
            return status
        time.sleep(poll)
    raise AssertionError(
        f"job {job_id} not terminal after {timeout}s: "
        f"{orch.status(job_id)}"
    )
