"""Wall reflection kernels.

The paper implements hard boundaries as **inviscid (specular)**
surfaces: "To simulate inviscid boundaries the particles are specularly
reflected from surfaces; this sort of boundary allows the direct
comparison of simulation results with 2D inviscid theoretical results."

The Future Work section asks for "no slip adiabatic and isothermal
walls"; :func:`reflect_diffuse_axis` implements the isothermal diffuse
(full accommodation) wall as that extension.

All kernels are vectorized over the selected particle subset and return
updated copies (callers own in-place policy).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def reflect_specular_axis(
    pos: np.ndarray,
    vel: np.ndarray,
    wall: float,
    side: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Specularly reflect positions/velocities off an axis-aligned wall.

    ``side`` is which side of the wall the *gas* occupies:

    * ``"above"``: gas at ``pos >= wall``; points below mirror up.
    * ``"below"``: gas at ``pos <= wall``; points above mirror down.

    Mirrors the coordinate across the wall plane and flips the normal
    velocity of exactly the particles that had crossed.  Unaffected
    entries are returned unchanged, so callers may pass full columns.
    """
    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    if side == "above":
        crossed = pos < wall
    elif side == "below":
        crossed = pos > wall
    else:
        raise ConfigurationError(f"side must be 'above' or 'below', got {side!r}")
    new_pos = np.where(crossed, 2.0 * wall - pos, pos)
    new_vel = np.where(crossed, -vel, vel)
    return new_pos, new_vel


def reflect_diffuse_axis(
    rng: np.random.Generator,
    pos: np.ndarray,
    velocity_components: Tuple[np.ndarray, np.ndarray, np.ndarray],
    rotational: np.ndarray,
    wall: float,
    side: str,
    normal_axis: int,
    wall_c_mp: float,
) -> tuple:
    """Diffuse (isothermal, fully accommodating) wall reflection.

    Particles that crossed the wall are re-emitted with velocities drawn
    from the wall-temperature distributions (the paper's Future Work
    "no slip ... isothermal wall"):

    * normal component: flux (Rayleigh) distributed *into* the gas,
      ``|c_n| = c_w * sqrt(-ln U)`` with ``c_w = wall_c_mp / sqrt(2)``
      scaling,
    * tangential components: Maxwellian at the wall temperature with
      zero slip,
    * rotational components: Maxwellian at the wall temperature.

    Positions fold back across the wall plane (the sub-step travel after
    re-emission is not retraced -- standard first-order DSMC treatment).

    Returns ``(pos, (u, v, w), rotational, crossed_mask)``.
    """
    if wall_c_mp <= 0:
        raise ConfigurationError("wall_c_mp must be positive")
    if normal_axis not in (0, 1, 2):
        raise ConfigurationError("normal_axis must be 0, 1 or 2")
    pos = np.asarray(pos, dtype=np.float64)
    if side == "above":
        crossed = pos < wall
        direction = 1.0
    elif side == "below":
        crossed = pos > wall
        direction = -1.0
    else:
        raise ConfigurationError(f"side must be 'above' or 'below', got {side!r}")

    n = int(np.count_nonzero(crossed))
    comps = [np.array(c, dtype=np.float64, copy=True) for c in velocity_components]
    rot = np.array(rotational, dtype=np.float64, copy=True)
    new_pos = np.where(crossed, 2.0 * wall - pos, pos)
    if n == 0:
        return new_pos, tuple(comps), rot, crossed

    sigma = wall_c_mp / math.sqrt(2.0)
    # Normal component: flux-weighted magnitude into the gas.
    u_draw = rng.random(n)
    normal_speed = wall_c_mp * np.sqrt(-np.log1p(-u_draw))
    for axis in range(3):
        if axis == normal_axis:
            comps[axis][crossed] = direction * normal_speed
        else:
            comps[axis][crossed] = rng.normal(0.0, sigma, size=n)
    if rot.size:
        rot[crossed] = rng.normal(0.0, sigma, size=(n, rot.shape[1]))
    return new_pos, tuple(comps), rot, crossed


def reflect_adiabatic_axis(
    rng: np.random.Generator,
    pos: np.ndarray,
    velocity_components: Tuple[np.ndarray, np.ndarray, np.ndarray],
    wall: float,
    side: str,
    normal_axis: int,
) -> tuple:
    """Adiabatic diffuse (no-slip) wall reflection.

    The second no-slip variant of the paper's Future Work.  Particles
    that crossed are re-emitted in a *random* (cosine-weighted)
    direction into the gas with their translational speed preserved --
    full directional accommodation (no slip) with zero net energy
    exchange at the wall (adiabatic).  Rotational state is untouched.

    Returns ``(pos, (u, v, w), crossed_mask)``.
    """
    if normal_axis not in (0, 1, 2):
        raise ConfigurationError("normal_axis must be 0, 1 or 2")
    pos = np.asarray(pos, dtype=np.float64)
    if side == "above":
        crossed = pos < wall
        direction = 1.0
    elif side == "below":
        crossed = pos > wall
        direction = -1.0
    else:
        raise ConfigurationError(f"side must be 'above' or 'below', got {side!r}")

    comps = [np.array(c, dtype=np.float64, copy=True) for c in velocity_components]
    new_pos = np.where(crossed, 2.0 * wall - pos, pos)
    n = int(np.count_nonzero(crossed))
    if n == 0:
        return new_pos, tuple(comps), crossed

    speed = np.sqrt(sum(c[crossed] ** 2 for c in comps))
    # Cosine-weighted hemisphere about the wall normal (the equilibrium
    # effusion flux distribution of directions).
    z = np.sqrt(rng.random(n))           # cos(theta) ~ sqrt(U)
    phi = rng.random(n) * 2.0 * math.pi
    t_mag = np.sqrt(np.maximum(1.0 - z**2, 0.0))
    tangent_axes = [a for a in range(3) if a != normal_axis]
    comps[normal_axis][crossed] = direction * speed * z
    comps[tangent_axes[0]][crossed] = speed * t_mag * np.cos(phi)
    comps[tangent_axes[1]][crossed] = speed * t_mag * np.sin(phi)
    return new_pos, tuple(comps), crossed


def reflect_plane(
    x: np.ndarray,
    y: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    point: Tuple[float, float],
    normal: Tuple[float, float],
    mask: np.ndarray,
) -> tuple:
    """Specular reflection across an arbitrary 2-D plane (line).

    Mirrors the masked particles' positions across the line through
    ``point`` with unit ``normal`` and reflects the in-plane velocity
    components.  Used by bodies other than the wedge (the wedge carries
    its own fused kernel).
    """
    nx, ny = normal
    norm = math.hypot(nx, ny)
    if norm == 0:
        raise ConfigurationError("normal must be non-zero")
    nx, ny = nx / norm, ny / norm
    x = np.array(x, dtype=np.float64, copy=True)
    y = np.array(y, dtype=np.float64, copy=True)
    u = np.array(u, dtype=np.float64, copy=True)
    v = np.array(v, dtype=np.float64, copy=True)
    d = (x[mask] - point[0]) * nx + (y[mask] - point[1]) * ny
    x[mask] -= 2.0 * d * nx
    y[mask] -= 2.0 * d * ny
    vdotn = u[mask] * nx + v[mask] * ny
    u[mask] -= 2.0 * vdotn * nx
    v[mask] -= 2.0 * vdotn * ny
    return x, y, u, v
