#!/usr/bin/env python
"""Inside the shock: the velocity distribution a fluid code can't see.

Places velocity-distribution probes in the freestream, inside the
oblique shock front, and in the post-shock layer of the rarefied wedge
flow, then prints ASCII histograms of the streamwise velocity with the
local equilibrium (Maxwellian) overlaid.  The freestream and post-shock
probes match their Maxwellians; the front probe carries *excess*
variance over any local equilibrium -- the two-stream kinetic structure
that motivates particle methods.

Run:
    python examples/shock_vdf.py
"""

import math
import time

import numpy as np

from repro import Domain, Freestream, Simulation, SimulationConfig, Wedge
from repro.analysis.vdf import VDFProbe, maxwellian_reference
from repro.physics import theory


def ascii_hist(values, lo, hi, bins=48, width=46, overlay=None):
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    peak = counts.max()
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * int(round(c / peak * width))
        marker = ""
        if overlay is not None:
            o = int(round(overlay[i] / overlay.max() * width))
            if o >= len(bar):
                marker = " " * (o - len(bar)) + "."
        center = 0.5 * (edges[i] + edges[i + 1])
        lines.append(f"{center:7.3f} |{bar}{marker}")
    return "\n".join(lines)


def main() -> None:
    fs = Freestream(mach=4.0, c_mp=0.14, lambda_mfp=0.5, density=14.0)
    cfg = SimulationConfig(
        domain=Domain(49, 32),
        freestream=fs,
        wedge=Wedge(x_leading=10.0, base=12.5, angle_deg=30.0),
        seed=33,
    )
    sim = Simulation(cfg)
    print(f"running {sim.particles.n} particles...")
    t0 = time.time()
    sim.run(200)
    probes = {
        "freestream": VDFProbe((10, 20), (22, 28)),
        "shock front": VDFProbe((18.0, 22.0), (8.5, 12.0)),
        "post-shock layer": VDFProbe((26.0, 32.0), (8.0, 12.0)),
    }
    sim.probes = list(probes.values())
    sim.run(260, sample=True)
    print(f"done in {time.time() - t0:.0f} s")

    beta = theory.shock_angle(4.0, math.radians(30.0))
    t_ratio = theory.normal_shock_temperature_ratio(4.0 * math.sin(beta))
    eq_var = {
        "freestream": fs.c_mp**2 / 2,
        "shock front": fs.c_mp**2 / 2 * t_ratio,   # hottest equilibrium
        "post-shock layer": fs.c_mp**2 / 2 * t_ratio,
    }

    lo, hi = -0.3, 0.9
    centers = np.linspace(lo, hi, 48)
    for name, probe in probes.items():
        m = probe.moments()
        overlay = maxwellian_reference(
            math.sqrt(2 * m["variance"]), m["mean"], centers
        )
        excess = m["variance"] / eq_var[name] - 1.0
        print(
            f"\n--- {name}: n={probe.n_samples}, <u>={m['mean']:.3f}, "
            f"var={m['variance']:.4f} "
            f"(vs hottest equilibrium: {excess:+.1%})"
        )
        print("(bars: measured; dots: Gaussian with the same mean/var)")
        print(ascii_hist(probe.values(), lo, hi, overlay=overlay))

    print(
        "\nReading: the freestream and post-shock distributions sit on "
        "their Gaussians;\nthe front's variance exceeds the hottest "
        "local equilibrium -- a super-equilibrium\n(two-stream) state "
        "only a kinetic method represents."
    )


if __name__ == "__main__":
    main()
