"""Runtime invariant auditing: catch silent corruption, loudly.

A production solver's worst failure mode is not a crash -- it is
quietly wrong numbers marching on for thousands of steps.  The
:class:`InvariantAuditor` runs O(N) checks over the *authoritative*
particle state (the shard workers' shared buffers for sharded runs, no
gather needed) at a configurable cadence, each encoding a conservation
or validity property of the paper's algorithm:

* **count accounting** -- the flow population changes only through the
  boundary fluxes: ``N(t) = N(t0) + injected - removed`` exactly, since
  collisions are pairwise and migration conserves particles globally.
* **finite state** -- positions, velocities and rotational components
  are finite (NaN/inf is how a corrupted exchange payload propagates).
* **fixed-point range** -- positions inside the tunnel and velocity
  magnitudes below the Q8.23 representable bound; the CM-2 engine
  would overflow on anything outside it.
* **cell consistency** -- every particle's stored cell index equals
  the index recomputed from its position (the sort, pairing and
  selection all trust this column).
* **slab containment** (sharded) -- every particle sits inside its
  owner shard's x-slab; a violation means migration lost or
  teleported a particle.
* **channel conservation** (sharded) -- migration-channel counts are
  within ``[0, capacity]``.
* **cached order** (incremental sort kernel) -- the temporal-coherence
  sorter's cached canonical order is a true permutation of the live
  population, cell-contiguous against the current cell column, and its
  mover-detection baseline matches the committed cells; a violation
  means the listener bookkeeping desynchronized from particle surgery.
* **energy drift** -- total (kinetic + rotational) energy moves less
  than a relative tolerance between audits; boundary fluxes exchange
  energy with the reservoir so this is a drift band, not an equality,
  but it catches runaway corruption (1e30 velocities) immediately.

Violations raise :class:`repro.errors.InvariantViolationError` with
structured context (step, shard, the check, the numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.particles import COLUMN_NAMES
from repro.errors import InvariantViolationError

#: Columns whose values must be finite after every step.
_FINITE_COLUMNS = ("x", "y", "u", "v", "w", "z")
#: Velocity columns bounded by the fixed-point range.
_VELOCITY_COLUMNS = ("u", "v", "w")


@dataclass(frozen=True)
class AuditConfig:
    """Which invariants to audit, and how tightly.

    ``velocity_limit`` defaults to the Q8.23 magnitude bound (256 cell
    widths per step): the paper's fixed-point engine cannot represent
    anything faster, so a larger value is corruption by definition.
    ``energy_drift_tol`` is deliberately loose (boundary fluxes move
    real energy in and out); it exists to catch blow-ups, not to
    police stochastic drift.
    """

    check_counts: bool = True
    check_finite: bool = True
    check_range: bool = True
    check_cells: bool = True
    check_slabs: bool = True
    check_channels: bool = True
    check_energy: bool = True
    check_order: bool = True
    velocity_limit: float = 256.0
    position_tolerance: float = 1e-9
    energy_drift_tol: float = 0.5


class InvariantAuditor:
    """Cadenced invariant checks over the live particle state.

    Usage from a step loop (the supervisor does exactly this)::

        auditor = InvariantAuditor()
        auditor.rebase(sim)
        for _ in range(n_steps):
            diag = sim.step()
            auditor.observe(diag)          # O(1): flux accounting
            if sim.step_count % cadence == 0:
                auditor.audit(sim)         # O(N): the real checks

    ``rebase`` must be called again whenever the simulation state is
    replaced outside the step loop (snapshot restore, recovery).
    """

    def __init__(self, config: Optional[AuditConfig] = None) -> None:
        self.config = config or AuditConfig()
        self._n_base: Optional[int] = None
        self._energy_base: Optional[float] = None
        self._injected = 0
        self._removed = 0
        self._last_step: Optional[int] = None
        #: Total audits run (cheap observability for tests/benchmarks).
        self.audits_run = 0

    # -- bookkeeping ----------------------------------------------------

    def rebase(self, sim) -> None:
        """Re-prime the accounting baselines from ``sim``'s live state."""
        views = self._views(sim)
        self._n_base = sum(int(v["x"].shape[0]) for v in views)
        self._energy_base = self._total_energy(views)
        self._injected = 0
        self._removed = 0
        self._last_step = sim.step_count

    def observe(self, diag) -> None:
        """Accumulate one step's boundary fluxes (O(1) per step)."""
        b = diag.boundary
        self._injected += b.n_injected_upstream
        self._removed += b.n_removed_downstream
        self._last_step = diag.step

    # -- the audit ------------------------------------------------------

    def audit(self, sim) -> Optional[dict]:
        """Run every enabled O(N) check; raise on the first violation.

        On success, returns a small report (which checks ran, particle
        count, total energy, shard count) that the supervisor forwards
        to telemetry as the audit event's payload.  Returns ``None``
        when the call only primed the baselines.
        """
        if self._n_base is None:
            self.rebase(sim)
            return None
        cfg = self.config
        step = sim.step_count
        views = self._views(sim)
        self.audits_run += 1
        checks = [
            name
            for name, on in (
                ("counts", cfg.check_counts),
                ("finite", cfg.check_finite),
                ("range", cfg.check_range),
                ("cells", cfg.check_cells),
                ("slabs", cfg.check_slabs),
                ("channels", cfg.check_channels),
                ("energy", cfg.check_energy),
                ("order", cfg.check_order),
            )
            if on
        ]

        if cfg.check_counts:
            n_now = sum(int(v["x"].shape[0]) for v in views)
            expected = self._n_base + self._injected - self._removed
            if n_now != expected:
                raise InvariantViolationError(
                    "particle-count accounting broken: flow population "
                    "does not match the boundary-flux ledger",
                    step=step,
                    check="counts",
                    n_now=n_now,
                    n_expected=expected,
                    injected=self._injected,
                    removed=self._removed,
                )

        domain = sim.config.domain
        slabs = self._slab_bounds(sim)
        sorters = self._sort_states(sim) if cfg.check_order else None
        for shard, v in enumerate(views):
            ctx = {"step": step}
            if len(views) > 1:
                ctx["shard"] = shard
            if cfg.check_finite:
                for name in _FINITE_COLUMNS:
                    col = v[name]
                    if col.size and not np.isfinite(col).all():
                        bad = int(np.count_nonzero(~np.isfinite(col)))
                        raise InvariantViolationError(
                            f"non-finite values in particle column "
                            f"{name!r}",
                            check="finite",
                            column=name,
                            n_bad=bad,
                            **ctx,
                        )
                rot = v["rot"]
                if rot.size and not np.isfinite(rot).all():
                    raise InvariantViolationError(
                        "non-finite rotational state",
                        check="finite",
                        column="rot",
                        **ctx,
                    )
            if cfg.check_range:
                self._check_range(v, domain, ctx)
            if cfg.check_cells and v["x"].size:
                expected_cell = domain.cell_index(v["x"], v["y"])
                if not np.array_equal(v["cell"], expected_cell):
                    bad = int(np.count_nonzero(v["cell"] != expected_cell))
                    raise InvariantViolationError(
                        "cell-index column inconsistent with particle "
                        "positions",
                        check="cells",
                        n_bad=bad,
                        **ctx,
                    )
            if (
                sorters is not None
                and shard < len(sorters)
                and sorters[shard] is not None
            ):
                self._check_order(sorters[shard], v, ctx)
            if cfg.check_slabs and slabs is not None and v["x"].size:
                lo, hi = slabs[shard]
                tol = cfg.position_tolerance
                x = v["x"]
                if float(x.min()) < lo - tol or float(x.max()) >= hi + tol:
                    raise InvariantViolationError(
                        "particle outside its owner shard's slab "
                        "(migration lost or teleported it)",
                        check="slabs",
                        slab_lo=lo,
                        slab_hi=hi,
                        x_min=float(x.min()),
                        x_max=float(x.max()),
                        **ctx,
                    )

        if cfg.check_channels:
            state = self._migration_state(sim)
            if state is not None:
                counts, capacity = state
                if counts.min() < 0 or counts.max() > capacity:
                    raise InvariantViolationError(
                        "migration-channel count outside [0, capacity]",
                        step=step,
                        check="channels",
                        count_min=int(counts.min()),
                        count_max=int(counts.max()),
                        capacity=int(capacity),
                    )

        energy = self._total_energy(views)
        if cfg.check_energy:
            base = self._energy_base
            if base is not None:
                drift = abs(energy - base) / max(abs(base), 1.0)
                if drift > cfg.energy_drift_tol:
                    raise InvariantViolationError(
                        "total energy drifted past the audit tolerance",
                        step=step,
                        check="energy",
                        energy=energy,
                        baseline=base,
                        drift=drift,
                        tolerance=cfg.energy_drift_tol,
                    )
            self._energy_base = energy

        # Roll the accounting window forward.
        self._n_base = sum(int(v["x"].shape[0]) for v in views)
        self._injected = 0
        self._removed = 0
        return {
            "checks": checks,
            "n_particles": self._n_base,
            "energy": energy,
            "shards": len(views),
        }

    # -- helpers --------------------------------------------------------

    def _check_range(self, v: Dict[str, np.ndarray], domain, ctx) -> None:
        cfg = self.config
        tol = cfg.position_tolerance
        x, y = v["x"], v["y"]
        if x.size:
            if float(x.min()) < -tol or float(x.max()) > domain.width + tol:
                raise InvariantViolationError(
                    "particle x position outside the tunnel",
                    check="range",
                    x_min=float(x.min()),
                    x_max=float(x.max()),
                    width=domain.width,
                    **ctx,
                )
            if float(y.min()) < -tol or float(y.max()) > domain.height + tol:
                raise InvariantViolationError(
                    "particle y position outside the tunnel",
                    check="range",
                    y_min=float(y.min()),
                    y_max=float(y.max()),
                    height=domain.height,
                    **ctx,
                )
        for name in _VELOCITY_COLUMNS:
            col = v[name]
            if col.size:
                peak = float(np.abs(col).max())
                if peak > cfg.velocity_limit:
                    raise InvariantViolationError(
                        f"velocity component {name!r} exceeds the "
                        "fixed-point representable range",
                        check="range",
                        column=name,
                        peak=peak,
                        limit=cfg.velocity_limit,
                        **ctx,
                    )

    @staticmethod
    def _check_order(sorter, v: Dict[str, np.ndarray], ctx) -> None:
        """Validate an incremental sorter's cached canonical order."""
        if not sorter._valid:
            return  # nothing committed yet (first step not taken)
        n = int(v["x"].shape[0])
        if sorter._order_n != n:
            raise InvariantViolationError(
                "cached sort order tracks a different population size "
                "than the live particle state",
                check="order",
                order_n=int(sorter._order_n),
                n_particles=n,
                **ctx,
            )
        if n == 0:
            return
        cell = v["cell"]
        order = sorter._order[:n]
        hits = np.bincount(order, minlength=n)
        if hits.shape[0] != n or not (hits == 1).all():
            raise InvariantViolationError(
                "cached sort order is not a permutation of the live "
                "particle rows",
                check="order",
                n_particles=n,
                n_missing=int(np.count_nonzero(hits[:n] == 0)),
                **ctx,
            )
        keys = cell[order].astype(np.int64) * n + order
        if n > 1 and not (np.diff(keys) > 0).all():
            raise InvariantViolationError(
                "cached sort order is not cell-contiguous canonical "
                "(cell, row) order",
                check="order",
                n_particles=n,
                **ctx,
            )
        if not np.array_equal(sorter._prev_cell[:n], cell):
            raise InvariantViolationError(
                "incremental sorter's committed cell baseline "
                "disagrees with the live cell column (mover detection "
                "would miss movers)",
                check="order",
                n_bad=int(np.count_nonzero(sorter._prev_cell[:n] != cell)),
                **ctx,
            )

    @staticmethod
    def _sort_states(sim) -> Optional[List]:
        """Per-view incremental sorters, aligned with ``_views``.

        Sharded backends expose per-shard sorters via ``sort_states()``
        (inline mode only -- worker-private in process mode, where the
        order audit is skipped).  Serially (and for the 1-worker
        delegate) the simulation-owned sorter is authoritative.
        """
        fn = getattr(sim.backend, "sort_states", None)
        states = fn() if callable(fn) else None
        if states is not None:
            return states
        cols = getattr(sim.backend, "shard_columns", None)
        if callable(cols) and cols() is not None:
            return None  # process-mode shards: sorters unreachable
        return [getattr(sim, "sort_state", None)]

    @staticmethod
    def _views(sim) -> List[Dict[str, np.ndarray]]:
        """Authoritative per-shard column views (single view serially)."""
        fn = getattr(sim.backend, "shard_columns", None)
        views = fn() if callable(fn) else None
        if views is None:
            p = sim.particles
            views = [{name: getattr(p, name) for name in COLUMN_NAMES}]
        return views

    @staticmethod
    def _slab_bounds(sim):
        fn = getattr(sim.backend, "shard_slab_bounds", None)
        return fn() if callable(fn) else None

    @staticmethod
    def _migration_state(sim):
        fn = getattr(sim.backend, "migration_state", None)
        return fn() if callable(fn) else None

    @staticmethod
    def _total_energy(views: List[Dict[str, np.ndarray]]) -> float:
        total = 0.0
        for v in views:
            u, w_, vv, rot = v["u"], v["w"], v["v"], v["rot"]
            total += 0.5 * (
                float(np.dot(u, u))
                + float(np.dot(vv, vv))
                + float(np.dot(w_, w_))
            )
            if rot.size:
                total += 0.5 * float((rot * rot).sum())
        return total
